package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"safetsa/internal/bench"
	"safetsa/internal/codeserver"
	"safetsa/internal/wire"
)

// switchHandler lets an httptest server come up before the Node whose
// handler it will serve exists: the fleet needs every member's URL to
// build its ring, and every member needs its handler served at that URL.
type switchHandler struct{ h atomic.Value }

func (s *switchHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// fleet is a 3-node in-process cluster: real codeservers, real HTTP
// between members, separate disk tiers.
type fleet struct {
	names []string
	urls  map[string]string
	srvs  map[string]*codeserver.Server
	nodes map[string]*Node
}

func newFleet(t *testing.T, names []string, mut func(*Config)) *fleet {
	t.Helper()
	f := &fleet{
		names: names,
		urls:  make(map[string]string),
		srvs:  make(map[string]*codeserver.Server),
		nodes: make(map[string]*Node),
	}
	handlers := make(map[string]*switchHandler)
	for _, name := range names {
		sh := &switchHandler{}
		ts := httptest.NewServer(sh)
		t.Cleanup(ts.Close)
		handlers[name] = sh
		f.urls[name] = ts.URL
	}
	for _, name := range names {
		srv, err := codeserver.New(codeserver.Config{NodeName: name, CacheDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Self: name, Peers: f.urls, VNodes: 16}
		if mut != nil {
			mut(&cfg)
		}
		node, err := NewNode(srv, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		handlers[name].h.Store(node.Handler())
		f.srvs[name] = srv
		f.nodes[name] = node
	}
	return f
}

func (f *fleet) owner(k codeserver.Key) string {
	return f.nodes[f.names[0]].Ring().Owner(k.String())
}

// fleetProgram is the i-th distinct tiny guest: distinct source → a
// distinct content key, terminating run, deterministic output.
func fleetProgram(i int) map[string]string {
	return map[string]string{"P.tj": fmt.Sprintf(`
class P {
    static void main() {
        System.out.println("p" + (%d * 7 + %d));
    }
}`, i, i)}
}

func fleetCompile(t *testing.T, url string, files map[string]string) codeserver.CompileResponse {
	t.Helper()
	body, _ := json.Marshal(codeserver.CompileRequest{Files: files})
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("compile via %s: status %d: %s", url, resp.StatusCode, b)
	}
	var cr codeserver.CompileResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

func fleetRun(url, hash string) (codeserver.RunResult, int, error) {
	body, _ := json.Marshal(codeserver.RunRequest{MaxSteps: 1_000_000})
	resp, err := http.Post(url+"/run/"+hash, "application/json", bytes.NewReader(body))
	if err != nil {
		return codeserver.RunResult{}, 0, err
	}
	defer resp.Body.Close()
	var rr codeserver.RunResult
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&rr)
	} else {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		err = fmt.Errorf("run status %d: %s", resp.StatusCode, b)
	}
	return rr, resp.StatusCode, err
}

// TestFleetSingleCompilePerUnit is the headline cluster invariant: under
// concurrent mixed compile/run traffic sprayed across every node, each
// unit key is compiled exactly once fleet-wide — by its ring owner — and
// every node ends up serving byte-identical, locally re-verified units.
func TestFleetSingleCompilePerUnit(t *testing.T) {
	names := []string{"a1", "b2", "c3"}
	f := newFleet(t, names, nil)

	const units = 6
	keys := make([]codeserver.Key, units)
	hashes := make([]string, units)
	for i := 0; i < units; i++ {
		keys[i] = codeserver.KeyFor(fleetProgram(i), codeserver.Options{})
		hashes[i] = keys[i].String()
	}

	const workers = 32
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 12; i++ {
				unit := rng.Intn(units)
				node := names[rng.Intn(len(names))]
				if i%2 == 0 {
					body, _ := json.Marshal(codeserver.CompileRequest{Files: fleetProgram(unit)})
					resp, err := http.Post(f.urls[node]+"/compile", "application/json", bytes.NewReader(body))
					if err != nil {
						errCh <- err
						return
					}
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errCh <- fmt.Errorf("compile on %s: status %d: %s", node, resp.StatusCode, b)
						return
					}
				} else {
					rr, _, err := fleetRun(f.urls[node], hashes[unit])
					if err != nil {
						errCh <- fmt.Errorf("run on %s: %w", node, err)
						return
					}
					want := fmt.Sprintf("p%d\n", unit*7+unit)
					if !rr.OK || rr.Output != want {
						errCh <- fmt.Errorf("run %d on %s: %+v, want output %q", unit, node, rr, want)
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// (a) Exactly one compile per unit fleet-wide, and only on the owner.
	wantCompiles := map[string]uint64{}
	for i := 0; i < units; i++ {
		wantCompiles[f.owner(keys[i])]++
	}
	var total uint64
	for _, name := range names {
		st := f.srvs[name].Stats()
		total += st.Compiles
		if st.Compiles != wantCompiles[name] {
			t.Errorf("node %s ran %d compiles, want %d (its owned share)", name, st.Compiles, wantCompiles[name])
		}
		if st.CompileErrors != 0 {
			t.Errorf("node %s recorded %d compile errors", name, st.CompileErrors)
		}
		if st.PeerFillRejects != 0 {
			t.Errorf("node %s rejected %d honest peer fills", name, st.PeerFillRejects)
		}
	}
	if total != units {
		t.Errorf("fleet ran %d compiles for %d units", total, units)
	}

	// (b) Every node serves every unit byte-identical to the owner's
	// encoding, and the served bytes re-verify.
	for i := 0; i < units; i++ {
		ownerBytes := fetchUnitBytes(t, f.urls[f.owner(keys[i])], hashes[i])
		if _, err := wire.DecodeVerified(ownerBytes); err != nil {
			t.Fatalf("owner unit %d does not verify: %v", i, err)
		}
		for _, name := range names {
			got := fetchUnitBytes(t, f.urls[name], hashes[i])
			if !bytes.Equal(got, ownerBytes) {
				t.Errorf("unit %d from %s differs from owner encoding", i, name)
			}
		}
	}

	// Peer fills happened (non-owners served the units) and none were
	// trusted blindly: the fill counters on non-owner nodes are non-zero.
	var fills uint64
	for _, name := range names {
		fills += f.srvs[name].Stats().PeerFills
	}
	if fills == 0 {
		t.Error("no peer fills recorded — traffic never crossed node boundaries")
	}
}

func fetchUnitBytes(t *testing.T, url, hash string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/unit/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unit fetch from %s: status %d, err %v", url, resp.StatusCode, err)
	}
	return data
}

// TestFleetForwardedCompileKeepsErrorKind: a compile whose source is
// broken must come back as the same 4xx class from every node — the
// owner's parse/sema classification survives the peer hop instead of
// collapsing into a 500.
func TestFleetForwardedCompileKeepsErrorKind(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2", "c3"}, nil)
	bad := map[string]string{"Bad.tj": "class Bad { static void main() { int x = \"notanint\"; } }"}
	for _, name := range f.names {
		body, _ := json.Marshal(codeserver.CompileRequest{Files: bad})
		resp, err := http.Post(f.urls[name]+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var er codeserver.ErrorResponse
		err = json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("node %s: bad source compile status %d, want 400", name, resp.StatusCode)
		}
		if er.Kind != "sema" && er.Kind != "parse" {
			t.Errorf("node %s: error kind %q, want a user-program kind", name, er.Kind)
		}
	}
}

// TestFleetStatsGossip: after traffic and a gossip round, every node's
// /stats reports a fleet view covering all three members with their
// per-node counters.
func TestFleetStatsGossip(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2", "c3"}, nil)
	cr := fleetCompile(t, f.urls["a1"], fleetProgram(0))
	for _, name := range f.names {
		if rr, _, err := fleetRun(f.urls[name], cr.Hash); err != nil || !rr.OK {
			t.Fatalf("run on %s: %+v err %v", name, rr, err)
		}
	}
	for _, name := range f.names {
		f.nodes[name].GossipOnce(context.Background())
	}

	resp, err := http.Get(f.urls["b2"] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if fs.Node != "b2" {
		t.Errorf("stats node %q, want b2", fs.Node)
	}
	if len(fs.Ring.Nodes) != 3 || fs.Ring.VNodes != 16 {
		t.Errorf("ring info %+v", fs.Ring)
	}
	if len(fs.Fleet) != 3 {
		t.Fatalf("fleet view has %d rows, want 3: %+v", len(fs.Fleet), fs.Fleet)
	}
	var runs uint64
	for _, row := range fs.Fleet {
		if !row.Reachable {
			t.Errorf("fleet row %s unreachable", row.Node)
		}
		runs += row.Runs
	}
	if runs != 3 {
		t.Errorf("fleet view reports %d runs, want 3", runs)
	}
	if fs.GossipErrors != 0 {
		t.Errorf("gossip errors: %d", fs.GossipErrors)
	}
	if fs.Local.Node != "b2" {
		t.Errorf("local stats node %q", fs.Local.Node)
	}
}

// TestFleetLoadReplay is acceptance for the load generator against the
// cluster: a zipfian 80/20 run/compile replay sprayed over all three
// nodes completes without errors and emits a valid safetsa-bench-v8
// report with a real run-latency distribution.
func TestFleetLoadReplay(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2", "c3"}, nil)
	targets := make([]string, 0, 3)
	for _, name := range f.names {
		targets = append(targets, f.urls[name])
	}

	res, err := bench.RunLoad(context.Background(), bench.LoadConfig{
		Targets:  targets,
		Workers:  8,
		Requests: 150,
		Duration: time.Minute, // backstop; the quota ends the replay
		Units:    8,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("fleet replay recorded %d errors: %v", res.Errors, res.ErrorSamples)
	}
	if res.Runs == 0 || res.Compiles == 0 {
		t.Fatalf("replay mix degenerate: %d runs, %d compiles", res.Runs, res.Compiles)
	}
	run := res.RunHist.Summary()
	if run.P50Nanos <= 0 || run.P99Nanos <= 0 {
		t.Fatalf("run stage latencies empty: %+v", run)
	}

	data, err := bench.FormatJSONLoad(res)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema string `json:"schema"`
		Load   *struct {
			Latencies map[string]struct {
				P50Nanos int64 `json:"p50_nanos"`
				P99Nanos int64 `json:"p99_nanos"`
			} `json:"latencies"`
		} `json:"load"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "safetsa-bench-v8" {
		t.Errorf("schema %q, want safetsa-bench-v8", rep.Schema)
	}
	if rep.Load == nil || rep.Load.Latencies["run"].P50Nanos <= 0 || rep.Load.Latencies["run"].P99Nanos <= 0 {
		t.Errorf("archived run latencies not populated: %+v", rep.Load)
	}

	// The replay exercised the whole cluster: the fleet still compiled
	// each warmed unit exactly once, wherever the traffic landed.
	var compiles uint64
	for _, name := range f.names {
		compiles += f.srvs[name].Stats().Compiles
	}
	if compiles != 8 {
		t.Errorf("fleet ran %d compiles for an 8-unit universe", compiles)
	}
}

// TestFleetHotReplication: a unit whose run rate crosses the threshold
// on its owner is pushed to its ring successor, which re-admits it
// through local verification and then serves it from its own store.
func TestFleetHotReplication(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2", "c3"}, func(c *Config) {
		c.HotThreshold = 3
		c.HotWindow = time.Minute
		c.Replicas = 2
	})
	cr := fleetCompile(t, f.urls["a1"], fleetProgram(1))
	k, err := codeserver.ParseKey(cr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.owner(k)
	succ := f.nodes[owner].Ring().Successors(cr.Hash, 2)
	if len(succ) != 2 {
		t.Fatalf("successors %v", succ)
	}
	replica := succ[1]

	if _, ok := f.srvs[replica].Unit(k); ok {
		t.Fatalf("replica node %s already holds the unit before it is hot", replica)
	}
	for i := 0; i < 3; i++ {
		if rr, _, err := fleetRun(f.urls[owner], cr.Hash); err != nil || !rr.OK {
			t.Fatalf("run %d on owner: %+v err %v", i, rr, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.srvs[replica].Unit(k); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot unit never replicated to %s", replica)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := f.nodes[owner].replicaPushes.Load(); got == 0 {
		t.Error("owner recorded no replica pushes")
	}
	if st := f.srvs[replica].Stats(); st.PeerFills == 0 {
		t.Error("replica admission did not go through the peer-fill counters")
	}
	// The replica arrived verified and byte-identical.
	ownerBytes := fetchUnitBytes(t, f.urls[owner], cr.Hash)
	u, _ := f.srvs[replica].Unit(k)
	if !bytes.Equal(u.Wire, ownerBytes) {
		t.Error("replica bytes differ from owner encoding")
	}
}
