package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"safetsa/internal/codeserver"
	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

// corruptPeerFixture is a victim node whose ring partner is a hostile
// httptest server: it answers peer unit fetches with whatever bytes the
// test plants. The guest program is chosen so its key is owned by the
// hostile peer, forcing the victim onto the peer-fill path.
type corruptPeerFixture struct {
	victim   *Node
	srv      *codeserver.Server
	cacheDir string
	key      codeserver.Key
	good     []byte // the owner's true encoding
	serve    func() []byte
}

func newCorruptPeerFixture(t *testing.T) *corruptPeerFixture {
	t.Helper()
	// A scratch single-node server produces the genuine unit bytes.
	scratch, err := codeserver.New(codeserver.Config{})
	if err != nil {
		t.Fatal(err)
	}

	fx := &corruptPeerFixture{cacheDir: t.TempDir()}
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/peer/unit/") {
			http.NotFound(w, r)
			return
		}
		data := fx.serve()
		w.Header().Set(optimizedHeader, "0")
		_, _ = w.Write(data)
	}))
	t.Cleanup(evil.Close)

	srv, err := codeserver.New(codeserver.Config{NodeName: "self", CacheDir: fx.cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := NewNode(srv, Config{
		Self:  "self",
		Peers: map[string]string{"self": "", "evil": evil.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(victim.Close)
	fx.victim, fx.srv = victim, srv

	// Find a guest whose key lands on the hostile peer.
	for i := 0; ; i++ {
		if i > 256 {
			t.Fatal("no program hashed onto the hostile peer")
		}
		files := fleetProgram(i)
		k := codeserver.KeyFor(files, codeserver.Options{})
		if victim.Ring().Owner(k.String()) != "evil" {
			continue
		}
		u, _, err := scratch.CompileUnit(context.Background(), files, codeserver.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fx.key, fx.good = k, u.Wire
		return fx
	}
}

// fill drives the victim's peer-fill path for the fixture key and
// returns the admission error (nil when the peer bytes were accepted).
func (fx *corruptPeerFixture) fill(t *testing.T) error {
	t.Helper()
	_, err := fx.victim.srv.RunUnit(context.Background(), fx.key, 1_000_000)
	return err
}

// assertNotAdmitted checks the security property: rejected peer bytes
// are visible nowhere — not in memory, not on disk.
func (fx *corruptPeerFixture) assertNotAdmitted(t *testing.T) {
	t.Helper()
	if _, ok := fx.srv.Unit(fx.key); ok {
		t.Fatal("rejected peer unit is resident in the memory tier")
	}
	if _, err := os.Stat(fmt.Sprintf("%s/%s.tsa", fx.cacheDir, fx.key)); err == nil {
		t.Fatal("rejected peer unit was persisted to the disk tier")
	}
}

// TestPeerFillRejectsTruncatedUnit: a peer shipping a truncated .tsa is
// caught by local re-verification; the bytes never land in any tier and
// the reject counter records the event.
func TestPeerFillRejectsTruncatedUnit(t *testing.T) {
	fx := newCorruptPeerFixture(t)
	fx.serve = func() []byte { return fx.good[:len(fx.good)-7] }

	err := fx.fill(t)
	if err == nil {
		t.Fatal("truncated peer unit was admitted")
	}
	if driver.KindOf(err) != driver.KindVerify {
		t.Errorf("truncated unit rejected with kind %v, want verify: %v", driver.KindOf(err), err)
	}
	fx.assertNotAdmitted(t)
	st := fx.srv.Stats()
	if st.PeerFillRejects != 1 {
		t.Errorf("peer_fill_rejects = %d, want 1", st.PeerFillRejects)
	}
	if st.PeerFills != 0 {
		t.Errorf("peer_fills = %d after a rejected fill, want 0", st.PeerFills)
	}

	// Honesty restored: the same key fills fine once the peer serves the
	// true bytes — the reject did not poison the fill slot.
	fx.serve = func() []byte { return fx.good }
	res, err := fx.victim.srv.RunUnit(context.Background(), fx.key, 1_000_000)
	if err != nil || !res.OK {
		t.Fatalf("honest retry failed: %+v err %v", res, err)
	}
	if got := fx.srv.Stats().PeerFills; got != 1 {
		t.Errorf("peer_fills after honest retry = %d, want 1", got)
	}
}

// TestPeerFillRejectsBitFlippedUnit: same property for silent
// corruption — a single flipped byte that breaks decode+verify is
// rejected at admission, counted, and cached nowhere.
func TestPeerFillRejectsBitFlippedUnit(t *testing.T) {
	fx := newCorruptPeerFixture(t)

	// Find a byte whose flip provably breaks local verification (some
	// payload bytes — e.g. inside string constants — survive a flip with
	// type safety intact; those are by design admissible).
	flipped := -1
	for i := 0; i < len(fx.good); i++ {
		mut := append([]byte(nil), fx.good...)
		mut[i] ^= 0x40
		if _, err := wire.DecodeVerified(mut); err != nil {
			flipped = i
			break
		}
	}
	if flipped < 0 {
		t.Fatal("no byte flip breaks verification — fixture unit too forgiving")
	}
	fx.serve = func() []byte {
		mut := append([]byte(nil), fx.good...)
		mut[flipped] ^= 0x40
		return mut
	}

	if err := fx.fill(t); err == nil {
		t.Fatal("bit-flipped peer unit was admitted")
	}
	fx.assertNotAdmitted(t)
	if got := fx.srv.Stats().PeerFillRejects; got != 1 {
		t.Errorf("peer_fill_rejects = %d, want 1", got)
	}
}

// TestPeerFillUnreachableOwner: with no live owner the miss surfaces as
// a fill error (counted as an error, not a reject) and the public unit
// endpoint reports a 5xx rather than fabricating a 404.
func TestPeerFillUnreachableOwner(t *testing.T) {
	srv, err := codeserver.New(codeserver.Config{NodeName: "self"})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := NewNode(srv, Config{
		Self:  "self",
		Peers: map[string]string{"self": "", "gone": "http://127.0.0.1:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(victim.Close)

	for i := 0; i < 256; i++ {
		k := codeserver.KeyFor(fleetProgram(i), codeserver.Options{})
		if victim.Ring().Owner(k.String()) != "gone" {
			continue
		}
		_, err := srv.RunUnit(context.Background(), k, 1_000_000)
		if err == nil {
			t.Fatal("run against a dead owner succeeded")
		}
		if errors.Is(err, codeserver.ErrUnitNotFound) {
			t.Fatalf("dead owner surfaced as not-found: %v", err)
		}
		if got := srv.Stats().PeerFillErrors; got != 1 {
			t.Errorf("peer_fill_errors = %d, want 1", got)
		}
		return
	}
	t.Fatal("no program hashed onto the dead peer")
}
