package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"safetsa/internal/codeserver"
)

// Config wires one codeserver into a fleet.
type Config struct {
	// Self is this node's name. It must be a key of Peers.
	Self string
	// Peers is the full static membership: node name → HTTP base URL
	// (scheme://host:port, no trailing slash), including Self. Every
	// member must be configured with the same name set so the rings
	// agree.
	Peers map[string]string
	// VNodes is the virtual-node count per member (<=0: DefaultVNodes).
	VNodes int
	// Client performs peer requests (nil: 15s-timeout default client).
	Client *http.Client
	// HotThreshold is the number of run requests for one unit within
	// HotWindow after which the unit is replicated to its ring
	// successors (<=0 disables replication).
	HotThreshold int
	// HotWindow is the run-rate measurement window (<=0: 10s).
	HotWindow time.Duration
	// Replicas is how many members (starting at the owner, walking the
	// ring) should hold a hot unit (<=0: 2).
	Replicas int
	// GossipInterval is how often the background loop refreshes peer
	// stats for the fleet view (<=0: background gossip disabled; the
	// fleet view then only covers what GossipOnce was asked to fetch).
	GossipInterval time.Duration
}

// Node is one fleet member: it routes public traffic by ring ownership,
// serves the internal peer API, and keeps the gossiped fleet view. It
// also implements codeserver.PeerFiller, which the wrapped server calls
// on a store miss along the run and unit-download paths.
type Node struct {
	cfg    Config
	srv    *codeserver.Server
	ring   *Ring
	client *http.Client
	inner  http.Handler
	hot    *hotTracker

	// Cluster-level counters (the per-request store/admission counters
	// live in codeserver.Metrics; these cover what only the cluster
	// layer sees).
	forwards          atomic.Uint64 // compiles forwarded to their owner
	replicaPushes     atomic.Uint64
	replicaPushErrors atomic.Uint64
	gossipErrors      atomic.Uint64

	gmu   sync.Mutex
	fleet map[string]NodeStats // last gossiped stats per peer

	stop     chan struct{}
	stopOnce sync.Once
	bg       sync.WaitGroup
}

// NewNode wraps srv as fleet member cfg.Self and installs itself as the
// server's peer filler. Call Start to begin background gossip and Close
// on shutdown.
func NewNode(srv *codeserver.Server, cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: node name required")
	}
	if _, ok := cfg.Peers[cfg.Self]; !ok {
		return nil, fmt.Errorf("cluster: self %q missing from peer list", cfg.Self)
	}
	names := make([]string, 0, len(cfg.Peers))
	for name, url := range cfg.Peers {
		if url == "" && name != cfg.Self {
			return nil, fmt.Errorf("cluster: peer %q has no URL", name)
		}
		names = append(names, name)
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.HotWindow <= 0 {
		cfg.HotWindow = 10 * time.Second
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 15 * time.Second}
	}
	n := &Node{
		cfg:    cfg,
		srv:    srv,
		ring:   ring,
		client: client,
		inner:  srv.Handler(),
		hot:    newHotTracker(cfg.HotThreshold, cfg.HotWindow),
		fleet:  make(map[string]NodeStats),
		stop:   make(chan struct{}),
	}
	srv.SetPeerFiller(n)
	return n, nil
}

// Ring exposes the placement ring (read-only; all members agree on it).
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's fleet name.
func (n *Node) Self() string { return n.cfg.Self }

// Start launches the background gossip loop when configured.
func (n *Node) Start() {
	if n.cfg.GossipInterval > 0 {
		n.bg.Add(1)
		go n.gossipLoop()
	}
}

// Close stops background work. It does not shut the wrapped server
// down; drain that separately via codeserver.Server.Shutdown.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.bg.Wait()
}

// Handler returns the fleet-aware HTTP API: the public routes that need
// ring routing, the internal peer API, and a fall-through to the
// wrapped server (which itself peer-fills store misses on the run and
// unit-download paths via the PeerFiller hook).
//
//	POST /compile              ring-routed compile (owner compiles once)
//	POST /run/{hash}           local run, peer fill on miss (+ hot tracking)
//	GET  /stats                fleet view (local stats + gossiped peers)
//	GET  /peer/unit/{hash}     encoded unit bytes for peers (no recursion)
//	POST /peer/compile         owner-side compile on behalf of a peer
//	PUT  /peer/replicate/{hash} hot-unit replica push (re-verified locally)
//	GET  /peer/stats           condensed per-node stats row for gossip
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", n.handleCompile)
	mux.HandleFunc("POST /run/{hash}", n.handleRun)
	mux.HandleFunc("GET /stats", n.handleStats)
	mux.HandleFunc("GET /peer/unit/{hash}", n.handlePeerUnit)
	mux.HandleFunc("POST /peer/compile", n.handlePeerCompile)
	mux.HandleFunc("PUT /peer/replicate/{hash}", n.handlePeerReplicate)
	mux.HandleFunc("GET /peer/stats", n.handlePeerStats)
	mux.Handle("/", n.inner)
	return mux
}

// Compile routes a compile request by content key: the ring owner runs
// the producer pipeline (under its local singleflight, so a hot new
// unit compiles exactly once fleet-wide); every other node serves its
// local store or coalesces callers onto one forwarded compile whose
// result bytes are re-admitted locally before caching.
func (n *Node) Compile(ctx context.Context, files map[string]string, opts codeserver.Options) (*codeserver.Unit, bool, error) {
	k := codeserver.KeyFor(files, opts)
	owner := n.ring.Owner(k.String())
	if owner == n.cfg.Self {
		return n.srv.CompileUnit(ctx, files, opts)
	}
	return n.srv.PeerFillUnit(ctx, k, func(ctx context.Context) ([]byte, bool, error) {
		n.forwards.Add(1)
		return n.forwardCompile(ctx, owner, files, opts)
	})
}

// FetchUnit implements codeserver.PeerFiller: it resolves a local store
// miss by asking the key's owner for the encoded unit. When this node
// *is* the owner, there is no better-informed peer to ask, so the miss
// stands.
func (n *Node) FetchUnit(ctx context.Context, k codeserver.Key) ([]byte, bool, error) {
	owner := n.ring.Owner(k.String())
	if owner == n.cfg.Self {
		return nil, false, codeserver.ErrUnitNotFound
	}
	return n.fetchUnitFrom(ctx, owner, k)
}

func (n *Node) handleCompile(w http.ResponseWriter, r *http.Request) {
	maxBody := n.srv.MaxSourceBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		codeserver.WriteError(w, err)
		return
	}
	if int64(len(body)) > maxBody {
		codeserver.WriteJSON(w, http.StatusRequestEntityTooLarge, codeserver.ErrorResponse{
			Error: fmt.Sprintf("source set exceeds %d bytes", maxBody),
			Kind:  "parse",
		})
		return
	}
	var req codeserver.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		codeserver.WriteJSON(w, http.StatusBadRequest, codeserver.ErrorResponse{
			Error: "bad request body: " + err.Error(), Kind: "parse"})
		return
	}
	u, cached, err := n.Compile(r.Context(), req.Files, codeserver.Options{Optimize: req.Optimize})
	if err != nil {
		codeserver.WriteError(w, err)
		return
	}
	codeserver.WriteJSON(w, http.StatusOK, codeserver.CompileResponse{
		Hash:         u.Key.String(),
		Size:         u.Size,
		Instructions: u.Instrs,
		Optimized:    u.Optimized,
		Cached:       cached,
	})
}

// handleRun feeds the hot-unit tracker, then delegates to the wrapped
// server (whose run path peer-fills missing units through FetchUnit).
func (n *Node) handleRun(w http.ResponseWriter, r *http.Request) {
	if k, err := codeserver.ParseKey(r.PathValue("hash")); err == nil {
		n.noteRun(k)
	}
	n.inner.ServeHTTP(w, r)
}
