package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"safetsa/internal/codeserver"
)

// fleetRunTenant is fleetRun with an explicit tenant identity.
func fleetRunTenant(url, hash, tenant string) (codeserver.RunResult, int, error) {
	body, _ := json.Marshal(codeserver.RunRequest{MaxSteps: 1_000_000, Tenant: tenant})
	resp, err := http.Post(url+"/run/"+hash, "application/json", bytes.NewReader(body))
	if err != nil {
		return codeserver.RunResult{}, 0, err
	}
	defer resp.Body.Close()
	var rr codeserver.RunResult
	if resp.StatusCode == http.StatusOK {
		err = json.NewDecoder(resp.Body).Decode(&rr)
	} else {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		err = fmt.Errorf("run status %d: %s", resp.StatusCode, b)
	}
	return rr, resp.StatusCode, err
}

// twoNodes builds a minimal a1/b2 fleet where the test owns b2's HTTP
// listener, so it can kill that peer mid-test.
func twoNodes(t *testing.T, mutA func(*codeserver.Config)) (a *Node, aURL string, bSrv *httptest.Server) {
	t.Helper()
	shA, shB := &switchHandler{}, &switchHandler{}
	tsA := httptest.NewServer(shA)
	t.Cleanup(tsA.Close)
	tsB := httptest.NewServer(shB)
	// No cleanup for tsB: tests close it themselves to simulate death
	// (closing twice is safe).
	t.Cleanup(tsB.Close)

	urls := map[string]string{"a1": tsA.URL, "b2": tsB.URL}
	mk := func(name string, sh *switchHandler, mut func(*codeserver.Config)) *Node {
		ccfg := codeserver.Config{NodeName: name}
		if mut != nil {
			mut(&ccfg)
		}
		srv, err := codeserver.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(srv, Config{Self: name, Peers: urls, VNodes: 16})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Close)
		sh.h.Store(node.Handler())
		return node
	}
	a = mk("a1", shA, mutA)
	mk("b2", shB, nil)
	return a, tsA.URL, tsB
}

// TestGossipMarksDeadPeerUnreachable is the regression test for the
// stuck-reachable bug: GossipOnce only ever set Reachable on success, so
// a peer that died after one good exchange stayed "reachable" in every
// later fleet view. A failed refresh must now flip the flag while
// keeping the last row's data, and the row's age must keep growing
// instead of being reset.
func TestGossipMarksDeadPeerUnreachable(t *testing.T) {
	a, _, tsB := twoNodes(t, nil)

	// Healthy exchange: b2's row arrives reachable.
	a.GossipOnce(context.Background())
	view := a.FleetView()
	var b2 *NodeStats
	for i := range view {
		if view[i].Node == "b2" {
			b2 = &view[i]
		}
	}
	if b2 == nil || !b2.Reachable {
		t.Fatalf("healthy peer not reachable in fleet view: %+v", view)
	}

	// Kill the peer. The next round must fail, keep the row data, and
	// flip Reachable — with the age still measured from the last good
	// exchange.
	tsB.Close()
	time.Sleep(5 * time.Millisecond)
	a.GossipOnce(context.Background())
	view = a.FleetView()
	b2 = nil
	for i := range view {
		if view[i].Node == "b2" {
			b2 = &view[i]
		}
	}
	if b2 == nil {
		t.Fatal("dead peer vanished from the fleet view (stale row should be kept)")
	}
	if b2.Reachable {
		t.Error("dead peer still marked reachable after a failed gossip round")
	}
	if b2.AgeSeconds <= 0 {
		t.Errorf("dead peer age %.3fs, want > 0 (age must not reset on failure)", b2.AgeSeconds)
	}
	if a.gossipErrors.Load() == 0 {
		t.Error("failed gossip round not counted")
	}

	// A second failed round keeps the row and keeps aging it.
	prevAge := b2.AgeSeconds
	time.Sleep(5 * time.Millisecond)
	a.GossipOnce(context.Background())
	for _, row := range a.FleetView() {
		if row.Node != "b2" {
			continue
		}
		if row.Reachable {
			t.Error("peer resurrected without a successful exchange")
		}
		if row.AgeSeconds <= prevAge {
			t.Errorf("age stopped growing: %.3fs then %.3fs", prevAge, row.AgeSeconds)
		}
	}
}

// TestClusterRunCarriesTenant: tenant identity and the fair-admission
// gate work through the cluster handler (the run hop every fleet request
// takes), and the rejection total reaches the gossip row.
func TestClusterRunCarriesTenant(t *testing.T) {
	a, aURL, _ := twoNodes(t, func(c *codeserver.Config) { c.TenantMaxInFlight = 1 })

	cr := fleetCompile(t, aURL, fleetProgram(1))
	loop, _, err := a.srv.CompileUnit(context.Background(), map[string]string{"Loop.tj": `
class Loop { static void main() { while (true) { } } }`}, codeserver.Options{})
	if err != nil {
		t.Fatal(err)
	}

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = a.srv.RunUnitOpts(runCtx, loop.Key, codeserver.RunOptions{Tenant: "bob"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for a.srv.Stats().RunsInFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("filler run never started")
		}
		time.Sleep(time.Millisecond)
	}

	// bob is at his bound: the cluster /run path must say 429.
	if _, status, _ := fleetRunTenant(aURL, cr.Hash, "bob"); status != 429 {
		t.Errorf("bob over bound got status %d, want 429", status)
	}
	// alice is unaffected and her run is accounted to her.
	rr, status, err := fleetRunTenant(aURL, cr.Hash, "alice")
	if err != nil || status != 200 || !rr.OK {
		t.Fatalf("alice run: status %d rr %+v err %v", status, rr, err)
	}

	cancel()
	<-done

	st := a.srv.Stats()
	if st.Tenants["alice"].Runs != 1 {
		t.Errorf("alice runs = %d, want 1", st.Tenants["alice"].Runs)
	}
	if st.Tenants["bob"].Rejects != 1 {
		t.Errorf("bob rejects = %d, want 1", st.Tenants["bob"].Rejects)
	}
	if row := a.localRow(); row.TenantRejects != 1 {
		t.Errorf("gossip row tenant_rejects = %d, want 1", row.TenantRejects)
	}
}
