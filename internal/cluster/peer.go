package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"safetsa/internal/codeserver"
	"safetsa/internal/driver"
)

// maxPeerUnitBytes bounds how much a peer response may claim to be one
// encoded unit. Units are source-derived and small; anything near this
// is a broken or hostile peer, not a real unit.
const maxPeerUnitBytes = 64 << 20

// optimizedHeader carries the unit's optimization flag alongside its
// bytes; the flag is cache-key metadata, not part of the wire image.
const optimizedHeader = "X-Safetsa-Optimized"

// ---- peer API: server side -------------------------------------------

// handlePeerUnit serves the encoded bytes of a locally held unit to a
// peer. Deliberately store-only: a peer asking a non-owner must get 404
// rather than a recursive fill, so a misconfigured ring cannot create
// fetch cycles.
func (n *Node) handlePeerUnit(w http.ResponseWriter, r *http.Request) {
	k, err := codeserver.ParseKey(r.PathValue("hash"))
	if err != nil {
		codeserver.WriteJSON(w, http.StatusBadRequest,
			codeserver.ErrorResponse{Error: err.Error(), Kind: "parse"})
		return
	}
	u, ok := n.srv.Unit(k)
	if !ok {
		codeserver.WriteError(w, codeserver.ErrUnitNotFound)
		return
	}
	writeUnit(w, u)
}

// handlePeerCompile compiles a source set on behalf of a non-owner node
// and returns the encoded unit bytes. It reuses the public compile path
// (singleflight, metrics, traces), so a storm of forwarded requests for
// one new unit still compiles exactly once.
func (n *Node) handlePeerCompile(w http.ResponseWriter, r *http.Request) {
	maxBody := n.srv.MaxSourceBytes()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		codeserver.WriteError(w, err)
		return
	}
	if int64(len(body)) > maxBody {
		codeserver.WriteJSON(w, http.StatusRequestEntityTooLarge, codeserver.ErrorResponse{
			Error: fmt.Sprintf("source set exceeds %d bytes", maxBody), Kind: "parse"})
		return
	}
	var req codeserver.CompileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		codeserver.WriteJSON(w, http.StatusBadRequest, codeserver.ErrorResponse{
			Error: "bad request body: " + err.Error(), Kind: "parse"})
		return
	}
	u, _, err := n.srv.CompileUnit(r.Context(), req.Files, codeserver.Options{Optimize: req.Optimize})
	if err != nil {
		codeserver.WriteError(w, err)
		return
	}
	writeUnit(w, u)
}

// handlePeerReplicate accepts a hot-unit replica push. The bytes pass
// through the same local decode+verify admission as any peer fill; a
// push that fails verification is rejected with 422 and leaves no trace
// in either store tier.
func (n *Node) handlePeerReplicate(w http.ResponseWriter, r *http.Request) {
	k, err := codeserver.ParseKey(r.PathValue("hash"))
	if err != nil {
		codeserver.WriteJSON(w, http.StatusBadRequest,
			codeserver.ErrorResponse{Error: err.Error(), Kind: "parse"})
		return
	}
	data, err := io.ReadAll(io.LimitReader(r.Body, maxPeerUnitBytes+1))
	if err != nil {
		codeserver.WriteError(w, err)
		return
	}
	if len(data) > maxPeerUnitBytes {
		codeserver.WriteJSON(w, http.StatusRequestEntityTooLarge, codeserver.ErrorResponse{
			Error: fmt.Sprintf("replica exceeds %d bytes", maxPeerUnitBytes), Kind: "verify"})
		return
	}
	optimized := r.Header.Get(optimizedHeader) == "1"
	u, err := n.srv.AdmitReplica(k, data, optimized)
	if err != nil {
		codeserver.WriteJSON(w, http.StatusUnprocessableEntity,
			codeserver.ErrorResponse{Error: err.Error(), Kind: driver.KindOf(err).String()})
		return
	}
	codeserver.WriteJSON(w, http.StatusOK, map[string]any{
		"hash": u.Key.String(), "size": u.Size,
	})
}

func writeUnit(w http.ResponseWriter, u *codeserver.Unit) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(u.Wire)))
	if u.Optimized {
		w.Header().Set(optimizedHeader, "1")
	} else {
		w.Header().Set(optimizedHeader, "0")
	}
	_, _ = w.Write(u.Wire)
}

// ---- peer API: client side -------------------------------------------

// fetchUnitFrom pulls the encoded unit bytes for k from a named peer.
// The caller re-verifies them locally (PeerFillUnit → AdmitUnit); this
// function only moves bytes.
func (n *Node) fetchUnitFrom(ctx context.Context, peer string, k codeserver.Key) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		n.peerURL(peer)+"/peer/unit/"+k.String(), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: peer %s unreachable: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, peerError(peer, resp)
	}
	data, err := readUnitBody(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: reading unit from peer %s: %w", peer, err)
	}
	return data, resp.Header.Get(optimizedHeader) == "1", nil
}

// forwardCompile asks the owner to compile a source set and returns the
// resulting encoded unit bytes (re-verified by the caller).
func (n *Node) forwardCompile(ctx context.Context, owner string, files map[string]string, opts codeserver.Options) ([]byte, bool, error) {
	body, err := json.Marshal(codeserver.CompileRequest{Files: files, Optimize: opts.Optimize})
	if err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		n.peerURL(owner)+"/peer/compile", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: owner %s unreachable: %w", owner, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false, peerError(owner, resp)
	}
	data, err := readUnitBody(resp.Body)
	if err != nil {
		return nil, false, fmt.Errorf("cluster: reading unit from owner %s: %w", owner, err)
	}
	return data, resp.Header.Get(optimizedHeader) == "1", nil
}

// pushReplica sends a locally held unit to a peer's replicate endpoint.
func (n *Node) pushReplica(ctx context.Context, peer string, u *codeserver.Unit) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		n.peerURL(peer)+"/peer/replicate/"+u.Key.String(), bytes.NewReader(u.Wire))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if u.Optimized {
		req.Header.Set(optimizedHeader, "1")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: replica push to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return peerError(peer, resp)
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return nil
}

func (n *Node) peerURL(peer string) string { return n.cfg.Peers[peer] }

func readUnitBody(r io.Reader) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(r, maxPeerUnitBytes+1))
	if err != nil {
		return nil, err
	}
	if len(data) > maxPeerUnitBytes {
		return nil, fmt.Errorf("unit exceeds %d bytes", maxPeerUnitBytes)
	}
	return data, nil
}

// peerError reconstructs a typed error from a peer's JSON error body so
// user-program faults (a parse error on a forwarded compile, say) keep
// their kind — and therefore their HTTP status — when re-reported by
// this node, instead of collapsing into 500s.
func peerError(peer string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er codeserver.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
		return fmt.Errorf("cluster: peer %s returned status %d", peer, resp.StatusCode)
	}
	if er.Kind == "not_found" || resp.StatusCode == http.StatusNotFound {
		return codeserver.ErrUnitNotFound
	}
	kind := driver.KindInternal
	switch er.Kind {
	case "parse":
		kind = driver.KindParse
	case "sema":
		kind = driver.KindSema
	case "verify":
		kind = driver.KindVerify
	case "runtime":
		kind = driver.KindRuntime
	}
	return &driver.Error{Kind: kind, Err: fmt.Errorf("%s (via peer %s)", er.Error, peer)}
}
