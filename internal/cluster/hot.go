package cluster

import (
	"context"
	"sync"
	"time"

	"safetsa/internal/codeserver"
)

// hotTracker counts run requests per unit key over a sliding window and
// reports, once per window, when a key crosses the hot threshold. The
// window is implemented as two alternating buckets (current + previous)
// — cheap, lock-scoped to a map touch, and accurate to within one
// window, which is all a replication trigger needs.
type hotTracker struct {
	threshold int
	window    time.Duration

	mu       sync.Mutex
	cur      map[codeserver.Key]int
	rotated  time.Time
	notified map[codeserver.Key]bool // already fired this generation
}

func newHotTracker(threshold int, window time.Duration) *hotTracker {
	return &hotTracker{
		threshold: threshold,
		window:    window,
		cur:       make(map[codeserver.Key]int),
		rotated:   time.Now(),
		notified:  make(map[codeserver.Key]bool),
	}
}

// note records one run of k and reports whether this run crossed the
// hot threshold (fires once per key per window generation, unless the
// caller re-arms the key because it could not act on the crossing).
func (h *hotTracker) note(k codeserver.Key) bool {
	if h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if now := time.Now(); now.Sub(h.rotated) > h.window {
		h.cur = make(map[codeserver.Key]int)
		h.notified = make(map[codeserver.Key]bool)
		h.rotated = now
	}
	h.cur[k]++
	if h.cur[k] >= h.threshold && !h.notified[k] {
		h.notified[k] = true
		return true
	}
	return false
}

// rearm clears the fired-this-generation latch for k, so the next run
// past the threshold reports a crossing again. Callers use it when a
// crossing fired but the replication push could not start — otherwise
// the latch (set by note before the caller's preconditions run) would
// swallow every retry until the window rotates.
func (h *hotTracker) rearm(k codeserver.Key) {
	h.mu.Lock()
	h.notified[k] = false
	h.mu.Unlock()
}

// noteRun feeds the hot tracker from the public run path and, on a
// threshold crossing, replicates the unit to its ring successors in the
// background. Only the key's owner pushes: every node sees its own run
// traffic, but replica placement is the owner's decision, so N nodes
// observing the same hot unit don't race N push fans.
func (n *Node) noteRun(k codeserver.Key) {
	if !n.hot.note(k) {
		return
	}
	if n.ring.Owner(k.String()) != n.cfg.Self {
		return // replica placement is the owner's call; never re-arm here
	}
	u, ok := n.srv.Unit(k)
	if !ok {
		// Nothing local to push yet (the store may still be admitting the
		// unit). Re-arm the tracker so the next threshold-crossing run
		// actually retries instead of being swallowed by the
		// once-per-window latch.
		n.hot.rearm(k)
		return
	}
	n.bg.Add(1)
	go func() {
		defer n.bg.Done()
		n.replicateOut(u)
	}()
}

// replicateOut pushes u to the ring successors that should hold a
// replica (owner first in the successor list — that's this node — then
// the next distinct members).
func (n *Node) replicateOut(u *codeserver.Unit) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, peer := range n.ring.Successors(u.Key.String(), n.cfg.Replicas) {
		if peer == n.cfg.Self {
			continue
		}
		if err := n.pushReplica(ctx, peer, u); err != nil {
			n.replicaPushErrors.Add(1)
			continue
		}
		n.replicaPushes.Add(1)
	}
}
