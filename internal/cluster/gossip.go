package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"safetsa/internal/codeserver"
)

// NodeStats is the condensed per-node row exchanged over gossip and
// aggregated into the fleet view: enough to see where units live, which
// nodes compile, and how much peer traffic flows — without shipping
// every histogram across the fleet on each round.
type NodeStats struct {
	Node            string `json:"node"`
	UnitsCached     int    `json:"units_cached"`
	ModulesLoaded   int    `json:"modules_loaded"`
	CompileRequests uint64 `json:"compile_requests"`
	Compiles        uint64 `json:"compiles"`
	CacheHits       uint64 `json:"cache_hits"`
	Runs            uint64 `json:"runs"`
	RunsInFlight    int64  `json:"runs_in_flight"`
	PeerFills       uint64 `json:"peer_fills"`
	PeerFillRejects uint64 `json:"peer_fill_rejects"`
	ReplicaPushes   uint64 `json:"replica_pushes"`
	Forwards        uint64 `json:"forwards"`
	TenantRejects   uint64 `json:"tenant_rejects"`
	// AgeSeconds is how stale this row was at snapshot time: 0 for the
	// reporting node itself, the time since the last successful gossip
	// exchange for a peer row.
	AgeSeconds float64 `json:"age_seconds,omitempty"`
	// Reachable is false when the last gossip attempt for this peer
	// failed — whether a row was ever obtained (the stale data is kept,
	// with AgeSeconds growing) or not (an otherwise-empty row).
	Reachable bool `json:"reachable"`

	fetchedAt time.Time
}

// FleetStats is what a cluster node serves on GET /stats: the full local
// snapshot plus the gossiped fleet view, keyed for humans and the load
// generator alike.
type FleetStats struct {
	Node         string           `json:"node"`
	Ring         RingInfo         `json:"ring"`
	Local        codeserver.Stats `json:"local"`
	Fleet        []NodeStats      `json:"fleet"`
	GossipErrors uint64           `json:"gossip_errors"`
}

// RingInfo describes the placement ring for /stats consumers.
type RingInfo struct {
	Nodes  []string `json:"nodes"`
	VNodes int      `json:"vnodes"`
}

// localRow condenses this node's own stats into a gossip row.
func (n *Node) localRow() NodeStats {
	st := n.srv.Stats()
	return NodeStats{
		Node:            n.cfg.Self,
		UnitsCached:     st.UnitsCached,
		ModulesLoaded:   st.ModulesLoaded,
		CompileRequests: st.CompileRequests,
		Compiles:        st.Compiles,
		CacheHits:       st.CacheHits,
		Runs:            st.Runs,
		RunsInFlight:    st.RunsInFlight,
		PeerFills:       st.PeerFills,
		PeerFillRejects: st.PeerFillRejects,
		ReplicaPushes:   n.replicaPushes.Load(),
		Forwards:        n.forwards.Load(),
		TenantRejects:   st.TenantRejects,
		Reachable:       true,
	}
}

// FleetView assembles the current fleet rows: this node live, peers as
// last gossiped (with staleness annotated).
func (n *Node) FleetView() []NodeStats {
	now := time.Now()
	rows := make([]NodeStats, 0, len(n.cfg.Peers))
	rows = append(rows, n.localRow())
	n.gmu.Lock()
	for name := range n.cfg.Peers {
		if name == n.cfg.Self {
			continue
		}
		row, ok := n.fleet[name]
		if !ok {
			rows = append(rows, NodeStats{Node: name, Reachable: false})
			continue
		}
		row.AgeSeconds = now.Sub(row.fetchedAt).Seconds()
		rows = append(rows, row)
	}
	n.gmu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Node < rows[j].Node })
	return rows
}

// GossipOnce refreshes the stats row of every peer (sequentially; the
// fleet is small and the rows are tiny). A failed peer keeps its last
// row data — a transient blip must not blank the fleet view — but the
// row is marked unreachable and its fetchedAt stands still, so the
// staleness keeps growing until the peer answers again. (It used to
// only ever set Reachable on success, so a peer that died after one
// good exchange was reported reachable forever.)
func (n *Node) GossipOnce(ctx context.Context) {
	for name := range n.cfg.Peers {
		if name == n.cfg.Self {
			continue
		}
		row, err := n.fetchPeerStats(ctx, name)
		if err != nil {
			n.gossipErrors.Add(1)
			n.gmu.Lock()
			if old, ok := n.fleet[name]; ok && old.Reachable {
				old.Reachable = false
				n.fleet[name] = old
			}
			n.gmu.Unlock()
			continue
		}
		row.fetchedAt = time.Now()
		row.Reachable = true
		n.gmu.Lock()
		n.fleet[name] = row
		n.gmu.Unlock()
	}
}

func (n *Node) gossipLoop() {
	defer n.bg.Done()
	tick := time.NewTicker(n.cfg.GossipInterval)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.GossipInterval)
			n.GossipOnce(ctx)
			cancel()
		}
	}
}

func (n *Node) fetchPeerStats(ctx context.Context, peer string) (NodeStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.peerURL(peer)+"/peer/stats", nil)
	if err != nil {
		return NodeStats{}, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return NodeStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return NodeStats{}, fmt.Errorf("cluster: peer %s stats status %d", peer, resp.StatusCode)
	}
	var row NodeStats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&row); err != nil {
		return NodeStats{}, err
	}
	return row, nil
}

// handlePeerStats serves this node's condensed row to gossiping peers.
func (n *Node) handlePeerStats(w http.ResponseWriter, r *http.Request) {
	codeserver.WriteJSON(w, http.StatusOK, n.localRow())
}

// handleStats serves the fleet view: full local stats plus the last
// gossiped row of every peer.
func (n *Node) handleStats(w http.ResponseWriter, r *http.Request) {
	srvStats := n.srv.Stats()
	codeserver.WriteJSON(w, http.StatusOK, FleetStats{
		Node:         n.cfg.Self,
		Ring:         RingInfo{Nodes: n.ring.Nodes(), VNodes: n.ring.VNodes()},
		Local:        srvStats,
		Fleet:        n.FleetView(),
		GossipErrors: n.gossipErrors.Load(),
	})
}
