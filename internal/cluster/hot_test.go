package cluster

import (
	"testing"
	"time"

	"safetsa/internal/codeserver"
)

// TestHotTrackerRearmRetries is the regression test for the swallowed
// replication retry: note latches the once-per-window flag the moment a
// crossing fires, before the caller's push preconditions run, so a
// caller that could not act on the crossing never saw it again within
// the window. rearm must hand the crossing back.
func TestHotTrackerRearmRetries(t *testing.T) {
	h := newHotTracker(3, time.Minute)
	var k codeserver.Key
	k[0] = 0xab

	fired := 0
	for i := 0; i < 6; i++ {
		if h.note(k) {
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("6 runs past a threshold of 3 fired %d crossings, want exactly 1", fired)
	}

	// The caller could not push: it re-arms, and the very next run over
	// the threshold fires again — no waiting for the window to rotate.
	h.rearm(k)
	if !h.note(k) {
		t.Fatal("crossing did not re-fire after rearm")
	}
	if h.note(k) {
		t.Fatal("crossing fired twice without an intervening rearm")
	}

	// rearm is per-key: an unrelated hot key keeps its latch.
	var k2 codeserver.Key
	k2[0] = 0xcd
	for i := 0; i < 3; i++ {
		h.note(k2)
	}
	h.rearm(k)
	if h.note(k2) {
		t.Fatal("rearm of one key unlatched another")
	}
}

// TestFleetHotReplicationSingleNode: a 1-node "fleet" with a replica
// count larger than the membership must never push (there is no one to
// push to), never record push errors, never spin, and close cleanly.
func TestFleetHotReplicationSingleNode(t *testing.T) {
	f := newFleet(t, []string{"solo"}, func(c *Config) {
		c.HotThreshold = 2
		c.HotWindow = time.Minute
		c.Replicas = 3 // more than the 1-node membership
	})
	cr := fleetCompile(t, f.urls["solo"], fleetProgram(1))
	for i := 0; i < 5; i++ {
		if rr, _, err := fleetRun(f.urls["solo"], cr.Hash); err != nil || !rr.OK {
			t.Fatalf("run %d: %+v err %v", i, rr, err)
		}
	}
	node := f.nodes["solo"]
	node.Close() // waits for any background push fan; must not hang
	if got := node.replicaPushes.Load(); got != 0 {
		t.Errorf("single-node fleet recorded %d replica pushes, want 0", got)
	}
	if got := node.replicaPushErrors.Load(); got != 0 {
		t.Errorf("single-node fleet recorded %d push errors, want 0", got)
	}
}

// TestFleetHotReplicationMoreReplicasThanMembers: with Replicas far
// beyond the fleet size, the owner pushes to each distinct non-self
// member exactly once — no self-push, no double-send, no spin.
func TestFleetHotReplicationMoreReplicasThanMembers(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2"}, func(c *Config) {
		c.HotThreshold = 2
		c.HotWindow = time.Minute
		c.Replicas = 9 // fleet has 2 members
	})
	cr := fleetCompile(t, f.urls["a1"], fleetProgram(2))
	k, err := codeserver.ParseKey(cr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.owner(k)
	other := "a1"
	if owner == "a1" {
		other = "b2"
	}
	for i := 0; i < 3; i++ {
		if rr, _, err := fleetRun(f.urls[owner], cr.Hash); err != nil || !rr.OK {
			t.Fatalf("run %d on owner: %+v err %v", i, rr, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.srvs[other].Unit(k); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hot unit never replicated to %s", other)
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.nodes[owner].Close() // drain the push fan before counting
	if got := f.nodes[owner].replicaPushes.Load(); got != 1 {
		t.Errorf("owner recorded %d pushes for 1 distinct non-self member, want exactly 1", got)
	}
	if got := f.nodes[owner].replicaPushErrors.Load(); got != 0 {
		t.Errorf("owner recorded %d push errors, want 0", got)
	}
	if got := f.nodes[other].replicaPushes.Load(); got != 0 {
		t.Errorf("non-owner %s pushed %d replicas, want 0", other, got)
	}
}

// TestFleetHotReplicationRetriesMissedPush reproduces the swallowed
// retry end to end: the owner's run traffic crosses the hot threshold
// while its store does not hold the unit yet, so the push is skipped.
// Once the unit is admitted, the next run over the threshold must
// replicate it within the same window — before the fix, the
// once-per-window latch (set before the store check) suppressed every
// retry until the window rotated.
func TestFleetHotReplicationRetriesMissedPush(t *testing.T) {
	f := newFleet(t, []string{"a1", "b2"}, func(c *Config) {
		c.HotThreshold = 3
		c.HotWindow = time.Minute
		c.Replicas = 2
	})

	// Learn the unit's key on a standalone server so neither fleet member
	// holds it yet.
	aside, err := codeserver.New(codeserver.Config{CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := aside.CompileUnit(t.Context(), fleetProgram(3), codeserver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := u.Key
	owner := f.owner(k)
	node := f.nodes[owner]

	// The threshold crossing fires while the store misses: push skipped.
	for i := 0; i < 3; i++ {
		node.noteRun(k)
	}
	if got := node.replicaPushes.Load(); got != 0 {
		t.Fatalf("pushed %d replicas with nothing in the store", got)
	}

	// Admit the unit fleet-wide (the ring routes the compile to the
	// owner), then cross the threshold once more in the same window.
	fleetCompile(t, f.urls[owner], fleetProgram(3))
	if _, ok := f.srvs[owner].Unit(k); !ok {
		t.Fatal("owner store does not hold the unit after compile")
	}
	node.noteRun(k)

	other := "a1"
	if owner == "a1" {
		other = "b2"
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := f.srvs[other].Unit(k); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("missed push was never retried within the window")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
