package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossConstructionOrder(t *testing.T) {
	a, err := NewRing([]string{"a1", "b2", "c3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"c3", "a1", "b2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingCoversAllNodes(t *testing.T) {
	nodes := []string{"a1", "b2", "c3"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	owned := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		owned[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		if owned[n] == 0 {
			t.Errorf("node %s owns no keys", n)
		}
		// With 64 vnodes the split should be within a few x of even; the
		// point of the assertion is that no node is starved or dominant.
		if owned[n] < keys/10 {
			t.Errorf("node %s owns only %d/%d keys — ring badly unbalanced", n, owned[n], keys)
		}
	}
}

func TestRingSuccessors(t *testing.T) {
	r, err := NewRing([]string{"a1", "b2", "c3"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		succ := r.Successors(k, 2)
		if len(succ) != 2 {
			t.Fatalf("Successors(%s, 2) = %v", k, succ)
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("successor list %v does not start with owner %s", succ, r.Owner(k))
		}
		if succ[0] == succ[1] {
			t.Fatalf("successor list %v repeats a node", succ)
		}
	}
	// Asking for more members than exist returns every member once.
	if got := r.Successors("k", 99); len(got) != 3 {
		t.Errorf("Successors(k, 99) = %v, want all 3 members", got)
	}
	if got := r.Successors("k", 0); got != nil {
		t.Errorf("Successors(k, 0) = %v, want nil", got)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got := r.Owner(fmt.Sprintf("key-%d", i)); got != "solo" {
			t.Fatalf("single-node ring routed to %q", got)
		}
	}
}

func TestRingRejectsBadMemberships(t *testing.T) {
	cases := [][]string{nil, {}, {"a", "a"}, {""}, {"a", ""}}
	for _, nodes := range cases {
		if _, err := NewRing(nodes, 8); err == nil {
			t.Errorf("NewRing(%q) accepted an invalid membership", nodes)
		}
	}
}
