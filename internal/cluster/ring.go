// Package cluster scales the codeserver from one process to a
// consistent-hash sharded fleet. Placement is by content key: a ring of
// virtual nodes maps every distribution-unit hash to exactly one owner,
// the only node that ever runs the producer pipeline for that key.
// Every other node serves the key by *peer fill* — fetching the encoded
// .tsa bytes from the owner over an internal peer API and re-admitting
// them through the local decode+verify path before caching.
//
// The trust model is the paper's: re-establishing type safety and
// referential security of received code costs only local counter
// checks, so a node can accept units from an arbitrarily hostile peer
// at the same price as from a client. Peers ship bytes; admission is
// always local. A corrupted or malicious peer can cause a fill to fail
// (counted, never cached) but can never place unverified code in a
// store tier or an interpreter session.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per member when the config
// does not choose one: enough points that three real nodes split the
// key space within a few percent of evenly.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring: every member contributes
// vnodes points, keys land on the first point clockwise from their
// hash. All members build the ring from the same sorted name list, so
// ownership is agreed fleet-wide without coordination.
type Ring struct {
	vnodes int
	names  []string
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds the ring over the given member names (<=0 vnodes means
// DefaultVNodes). Names are sorted and must be unique and non-empty —
// every fleet member must construct an identical ring.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	names := append([]string(nil), nodes...)
	sort.Strings(names)
	r := &Ring{vnodes: vnodes, names: names}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && names[i-1] == name {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), node: name})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between two members is vanishingly rare but
		// must still order identically on every node.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// pointHash places virtual node v of a member on the ring. The name is
// length-prefixed so "ab"+"#1" and "a"+"b#1" cannot collide.
func pointHash(node string, v int) uint64 {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(node)))
	h.Write(buf[:n])
	h.Write([]byte(node))
	h.Write([]byte("#" + strconv.Itoa(v)))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a unit key (its hex content hash) on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member that owns key: the only node that compiles
// it, and the node every peer fill for it is directed at.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(keyHash(key))].node
}

// Successors returns up to n distinct members clockwise from key's ring
// position, starting with the owner — the placement order for hot-unit
// replicas.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.names) {
		n = len(r.names)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(keyHash(key)); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0 // wrap: the ring is circular
	}
	return i
}

// Nodes returns the sorted member names.
func (r *Ring) Nodes() []string { return append([]string(nil), r.names...) }

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }
