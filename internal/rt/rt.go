// Package rt is the shared runtime substrate for the two code consumers
// (the SafeTSA evaluator in package interp and the baseline stack-machine
// interpreter in package bytecode): values, heap objects, arrays,
// strings, the imported host library (Math, System.out, String methods),
// and exception signalling. Sharing the runtime makes the differential
// tests meaningful — both pipelines act on identical machine state.
package rt

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Value is a runtime value: exactly one of the payload fields is
// meaningful, as dictated by the statically known type at each use site.
// Integral types (int, long, char, boolean) live in I, double in D,
// references in R (nil R = Java null).
type Value struct {
	I int64
	D float64
	R Ref
}

// Ref is a reference payload: *Object, *Array, *Str, or nil for null.
type Ref interface{ refTag() }

// Object is a class instance.
type Object struct {
	Class  *ClassInfo
	Fields []Value
	id     int64
}

// Array is an array instance; TypeID is the consumer's tag for the array
// type (used by instanceof and checked casts).
type Array struct {
	Elems  []Value
	TypeID int32
}

// Str is an immutable string instance.
type Str struct{ S string }

func (*Object) refTag() {}
func (*Array) refTag()  {}
func (*Str) refTag()    {}

// IntValue, LongValue, DoubleValue, BoolValue, CharValue, RefValue are
// convenience constructors.
func IntValue(v int32) Value      { return Value{I: int64(v)} }
func LongValue(v int64) Value     { return Value{I: v} }
func DoubleValue(v float64) Value { return Value{D: v} }
func BoolValue(b bool) Value {
	if b {
		return Value{I: 1}
	}
	return Value{}
}
func CharValue(r rune) Value { return Value{I: int64(uint16(r))} }
func RefValue(r Ref) Value   { return Value{R: r} }

// Bool reads a boolean payload.
func (v Value) Bool() bool { return v.I != 0 }

// Int reads an int payload with Java's 32-bit wrapping.
func (v Value) Int() int32 { return int32(v.I) }

// ClassInfo is the consumer-independent runtime metadata of a class.
type ClassInfo struct {
	Name     string
	Super    *ClassInfo
	NumSlots int
	// VTable holds consumer-specific method identifiers (method-table
	// indices for SafeTSA, method ids for the bytecode loader).
	VTable []int32
	// TypeID tags the class in the consumer's type numbering.
	TypeID int32
	// Statics is the static field storage of the class.
	Statics []Value
}

// IsSubclassOf reports whether c is d or below it.
func (c *ClassInfo) IsSubclassOf(d *ClassInfo) bool {
	for x := c; x != nil; x = x.Super {
		if x == d {
			return true
		}
	}
	return false
}

// Thrown carries a TJ exception through the Go stack via panic/recover.
type Thrown struct{ Val Value }

// Env is the execution environment shared by the interpreters. An Env
// (and everything it allocates) belongs to exactly one execution session;
// it must never be shared between concurrently running programs.
type Env struct {
	Out io.Writer
	// Steps counts executed instructions; execution aborts with
	// ErrStepLimit once MaxSteps is exceeded (0 = unlimited).
	Steps    int64
	MaxSteps int64
	// Allocs counts abstract allocation units (object field slots, array
	// elements, string bytes); execution aborts with ErrAllocLimit once
	// MaxAlloc is exceeded (0 = unlimited). Sandboxed consumers — the
	// fuzzing oracle in particular — set this so that a hostile module
	// cannot exhaust host memory within its step budget (e.g. by
	// repeatedly doubling a string or allocating huge arrays).
	Allocs   int64
	MaxAlloc int64
	// Interrupt, when non-nil, is polled every few thousand steps;
	// once it is closed (e.g. a context.Done channel) execution aborts
	// with ErrInterrupted. This is how servers cancel guest programs.
	Interrupt <-chan struct{}

	nextID int64
}

// ErrStepLimit is panicked (as a plain Go panic, not a Thrown) when the
// step budget is exhausted.
var ErrStepLimit = fmt.Errorf("rt: step limit exceeded")

// ErrAllocLimit is panicked (as a plain Go panic, not a Thrown) when the
// allocation budget is exhausted.
var ErrAllocLimit = fmt.Errorf("rt: allocation limit exceeded")

// ErrInterrupted is panicked (as a plain Go panic, not a Thrown) when the
// Interrupt channel is closed mid-execution.
var ErrInterrupted = fmt.Errorf("rt: execution interrupted")

// IsExecError reports whether err is one of the abnormal-termination
// sentinels an interpreter's top-level recover must convert to a plain
// error instead of re-panicking.
func IsExecError(err error) bool {
	return err == ErrStepLimit || err == ErrAllocLimit || err == ErrInterrupted
}

// KillReason maps an abnormal-termination sentinel (possibly wrapped) to
// a stable label for metrics: "step_limit", "alloc_limit", or
// "interrupt". Errors that are not budget kills report "".
func KillReason(err error) string {
	switch {
	case errors.Is(err, ErrStepLimit):
		return "step_limit"
	case errors.Is(err, ErrAllocLimit):
		return "alloc_limit"
	case errors.Is(err, ErrInterrupted):
		return "interrupt"
	}
	return ""
}

// Charge consumes n units of allocation budget.
func (e *Env) Charge(n int64) {
	e.Allocs += n
	if e.MaxAlloc > 0 && e.Allocs > e.MaxAlloc {
		panic(ErrAllocLimit)
	}
}

// Step consumes one step of budget.
func (e *Env) Step() {
	e.Steps++
	if e.MaxSteps > 0 && e.Steps > e.MaxSteps {
		panic(ErrStepLimit)
	}
	if e.Interrupt != nil && e.Steps&0x0FFF == 0 {
		select {
		case <-e.Interrupt:
			panic(ErrInterrupted)
		default:
		}
	}
}

// NewObject allocates an instance with zeroed fields.
func (e *Env) NewObject(c *ClassInfo) *Object {
	e.Charge(int64(c.NumSlots) + 1)
	e.nextID++
	return &Object{Class: c, Fields: make([]Value, c.NumSlots), id: e.nextID}
}

// NewArray allocates an array of n zero values; n must already have been
// checked non-negative.
func (e *Env) NewArray(n int32, typeID int32) *Array {
	e.Charge(int64(n) + 1)
	return &Array{Elems: make([]Value, n), TypeID: typeID}
}

// NewStr allocates a string instance, charging its length against the
// allocation budget.
func (e *Env) NewStr(s string) *Str {
	e.Charge(int64(len(s)) + 1)
	return &Str{S: s}
}

// Identity returns the identity hash of a reference.
func Identity(r Ref) int64 {
	switch r := r.(type) {
	case *Object:
		return r.id
	case *Array:
		return int64(len(r.Elems))*31 + int64(r.TypeID)
	case *Str:
		return int64(StringHash(r.S))
	}
	return 0
}

// ---------------------------------------------------------------------
// Exceptions

// ExcClasses bundles the ClassInfos of the imported exception hierarchy a
// consumer registered, so the runtime can construct implicit exceptions.
type ExcClasses struct {
	Throwable, Exception              *ClassInfo
	NPE, Arith, Bounds, Cast, NegSize *ClassInfo
}

// ThrowNew panics with a freshly allocated exception of class c carrying
// the message in field slot 0.
func (e *Env) ThrowNew(c *ClassInfo, msg string) {
	o := e.NewObject(c)
	if len(o.Fields) > 0 {
		o.Fields[0] = RefValue(&Str{S: msg})
	}
	panic(Thrown{Val: RefValue(o)})
}

// ---------------------------------------------------------------------
// Java arithmetic semantics

// IDiv implements Java int division (throws via env on zero divisor).
func IDiv(a, b int32) int32 {
	if a == math.MinInt32 && b == -1 {
		return math.MinInt32
	}
	return a / b
}

// IRem implements Java int remainder.
func IRem(a, b int32) int32 {
	if a == math.MinInt32 && b == -1 {
		return 0
	}
	return a % b
}

// LDiv implements Java long division.
func LDiv(a, b int64) int64 {
	if a == math.MinInt64 && b == -1 {
		return math.MinInt64
	}
	return a / b
}

// LRem implements Java long remainder.
func LRem(a, b int64) int64 {
	if a == math.MinInt64 && b == -1 {
		return 0
	}
	return a % b
}

// D2I converts double to int with Java's saturating semantics.
func D2I(d float64) int32 {
	switch {
	case math.IsNaN(d):
		return 0
	case d >= math.MaxInt32:
		return math.MaxInt32
	case d <= math.MinInt32:
		return math.MinInt32
	}
	return int32(d)
}

// D2L converts double to long with Java's saturating semantics.
func D2L(d float64) int64 {
	switch {
	case math.IsNaN(d):
		return 0
	case d >= math.MaxInt64:
		return math.MaxInt64
	case d <= math.MinInt64:
		return math.MinInt64
	}
	return int64(d)
}

// DRem implements Java's % on doubles (IEEE remainder semantics of the
// JLS, which is math.Mod, not math.Remainder).
func DRem(a, b float64) float64 { return math.Mod(a, b) }

// ---------------------------------------------------------------------
// String operations of the imported String type

// FormatDouble renders a double exactly like Java's Double.toString
// (JLS / java.lang.Double, with the JDK 19+ shortest-round-trip digit
// selection, which is also what strconv produces): plain decimal
// notation when 1e-3 <= |d| < 1e7, computerized scientific notation
// ("1.0E7", "1.0E-4" — no '+', no zero-padded exponent) otherwise, and
// always at least one digit after the decimal point.
func FormatDouble(d float64) string {
	switch {
	case math.IsNaN(d):
		return "NaN"
	case math.IsInf(d, 1):
		return "Infinity"
	case math.IsInf(d, -1):
		return "-Infinity"
	case d == 0:
		if math.Signbit(d) {
			return "-0.0"
		}
		return "0.0"
	}
	if abs := math.Abs(d); abs >= 1e-3 && abs < 1e7 {
		s := strconv.FormatFloat(d, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	}
	s := strconv.FormatFloat(d, 'E', -1, 64)
	mant, exp, _ := strings.Cut(s, "E")
	if !strings.Contains(mant, ".") {
		mant += ".0"
	}
	neg := strings.HasPrefix(exp, "-")
	exp = strings.TrimLeft(strings.TrimPrefix(exp, "+"), "-0")
	if neg {
		exp = "-" + exp
	}
	return mant + "E" + exp
}

// StringOf renders any value in Java string-conversion style; kind is a
// one-letter tag (i, l, d, z, c, r).
func StringOf(v Value, kind byte) string {
	switch kind {
	case 'i':
		return strconv.FormatInt(int64(int32(v.I)), 10)
	case 'l':
		return strconv.FormatInt(v.I, 10)
	case 'd':
		return FormatDouble(v.D)
	case 'z':
		if v.I != 0 {
			return "true"
		}
		return "false"
	case 'c':
		// Through the UTF-16-aware path: an unpaired surrogate code unit
		// must survive (as WTF-8) rather than collapse to U+FFFD, so that
		// both pipelines print and re-consume what Java's string model
		// holds.
		return stringFromUnits([]uint16{uint16(v.I)})
	case 'r':
		return RefString(v.R)
	}
	panic("rt: bad string conversion tag")
}

// RefString renders a reference as Java string conversion would.
func RefString(r Ref) string {
	switch r := r.(type) {
	case nil:
		return "null"
	case *Str:
		return r.S
	case *Object:
		return fmt.Sprintf("%s@%x", r.Class.Name, r.id)
	case *Array:
		return fmt.Sprintf("array@%x", Identity(r))
	}
	return "?"
}

// StringHash implements Java's String.hashCode.
func StringHash(s string) int32 {
	var h int32
	for _, r := range utf16Units(s) {
		h = 31*h + int32(r)
	}
	return h
}

// utf16Units converts the runtime string encoding (WTF-8: UTF-8 plus
// three-byte sequences for unpaired surrogate code units) to the UTF-16
// code-unit sequence of the equivalent Java string.
func utf16Units(s string) []uint16 {
	out := make([]uint16, 0, len(s))
	for i := 0; i < len(s); {
		if u, ok := decodeSurrogateWTF8(s[i:]); ok {
			out = append(out, u)
			i += 3
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r > 0xFFFF {
			r -= 0x10000
			out = append(out, uint16(0xD800+(r>>10)), uint16(0xDC00+(r&0x3FF)))
		} else {
			out = append(out, uint16(r))
		}
		i += size
	}
	return out
}

// decodeSurrogateWTF8 reads the WTF-8 encoding of one surrogate code
// unit (0xED 0xA0..0xBF 0x80..0xBF ⇒ U+D800..U+DFFF), which strict
// UTF-8 decoders reject.
func decodeSurrogateWTF8(s string) (uint16, bool) {
	if len(s) >= 3 && s[0] == 0xED &&
		s[1] >= 0xA0 && s[1] <= 0xBF && s[2] >= 0x80 && s[2] <= 0xBF {
		return 0xD000 | uint16(s[1]&0x3F)<<6 | uint16(s[2]&0x3F), true
	}
	return 0, false
}

// appendUnitWTF8 appends one UTF-16 code unit; surrogates (necessarily
// unpaired here) are written in WTF-8 so they round-trip through
// utf16Units instead of degrading to U+FFFD.
func appendUnitWTF8(sb *strings.Builder, u uint16) {
	if u >= 0xD800 && u <= 0xDFFF {
		sb.WriteByte(0xE0 | byte(u>>12))
		sb.WriteByte(0x80 | byte(u>>6)&0x3F)
		sb.WriteByte(0x80 | byte(u)&0x3F)
		return
	}
	sb.WriteRune(rune(u))
}

// GetStr extracts a Go string from a string reference; ok is false on
// null or non-string references.
func GetStr(r Ref) (string, bool) {
	s, ok := r.(*Str)
	if !ok {
		return "", false
	}
	return s.S, true
}

// Concat implements the String.concat primitive: null renders "null".
// It is an Env method so the result is charged against the allocation
// budget — unbounded string growth (s = s + s) is the cheapest way for a
// hostile module to exhaust host memory.
func (e *Env) Concat(a, b Ref) Ref {
	return e.NewStr(RefString(a) + RefString(b))
}

// Println/Print write to the environment output.
func (e *Env) Println(s string) { fmt.Fprintln(e.Out, s) }
func (e *Env) Print(s string)   { fmt.Fprint(e.Out, s) }

// MathOp evaluates the named double intrinsic.
func MathOp(name string, a, b float64) float64 {
	switch name {
	case "sqrt":
		return math.Sqrt(a)
	case "abs":
		return math.Abs(a)
	case "min":
		return math.Min(a, b)
	case "max":
		return math.Max(a, b)
	case "pow":
		return math.Pow(a, b)
	case "floor":
		return math.Floor(a)
	case "ceil":
		return math.Ceil(a)
	case "log":
		return math.Log(a)
	case "exp":
		return math.Exp(a)
	case "sin":
		return math.Sin(a)
	case "cos":
		return math.Cos(a)
	}
	panic("rt: unknown math intrinsic " + name)
}

// Substring implements String.substring with Java bounds semantics;
// returns ok=false when the bounds are invalid (caller throws).
func Substring(s string, begin, end int32) (string, bool) {
	u := utf16Units(s)
	if begin < 0 || end > int32(len(u)) || begin > end {
		return "", false
	}
	return stringFromUnits(u[begin:end]), true
}

// CharAt returns the UTF-16 unit at index i.
func CharAt(s string, i int32) (uint16, bool) {
	u := utf16Units(s)
	if i < 0 || i >= int32(len(u)) {
		return 0, false
	}
	return u[i], true
}

// StrLen is the UTF-16 length of the string.
func StrLen(s string) int32 { return int32(len(utf16Units(s))) }

// IndexOfStr is Java's String.indexOf(String).
func IndexOfStr(s, sub string) int32 {
	i := strings.Index(s, sub)
	if i < 0 {
		return -1
	}
	return int32(len(utf16Units(s[:i])))
}

// CompareStr is Java's String.compareTo.
func CompareStr(a, b string) int32 {
	ua, ub := utf16Units(a), utf16Units(b)
	n := len(ua)
	if len(ub) < n {
		n = len(ub)
	}
	for i := 0; i < n; i++ {
		if ua[i] != ub[i] {
			return int32(ua[i]) - int32(ub[i])
		}
	}
	return int32(len(ua) - len(ub))
}

func stringFromUnits(u []uint16) string {
	var sb strings.Builder
	for i := 0; i < len(u); i++ {
		if r := rune(u[i]); r >= 0xD800 && r <= 0xDBFF && i+1 < len(u) &&
			u[i+1] >= 0xDC00 && u[i+1] <= 0xDFFF {
			sb.WriteRune(0x10000 + (r-0xD800)<<10 + (rune(u[i+1]) - 0xDC00))
			i++
			continue
		}
		appendUnitWTF8(&sb, u[i])
	}
	return sb.String()
}
