package rt

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestJavaDivisionEdges(t *testing.T) {
	if got := IDiv(math.MinInt32, -1); got != math.MinInt32 {
		t.Errorf("MinInt32 / -1 = %d, want MinInt32 (Java wraps)", got)
	}
	if got := IRem(math.MinInt32, -1); got != 0 {
		t.Errorf("MinInt32 %% -1 = %d, want 0", got)
	}
	if got := LDiv(math.MinInt64, -1); got != math.MinInt64 {
		t.Errorf("MinInt64 / -1 = %d", got)
	}
	if got := LRem(math.MinInt64, -1); got != 0 {
		t.Errorf("MinInt64 %% -1 = %d", got)
	}
	if got := IDiv(7, -2); got != -3 {
		t.Errorf("7 / -2 = %d, want -3 (truncation toward zero)", got)
	}
	if got := IRem(-7, 2); got != -1 {
		t.Errorf("-7 %% 2 = %d, want -1", got)
	}
}

// TestDivRemIdentity: Java requires (a/b)*b + a%b == a for every b != 0.
func TestDivRemIdentity(t *testing.T) {
	prop := func(a, b int32) bool {
		if b == 0 {
			return true
		}
		return IDiv(a, b)*b+IRem(a, b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	propL := func(a, b int64) bool {
		if b == 0 {
			return true
		}
		return LDiv(a, b)*b+LRem(a, b) == a
	}
	if err := quick.Check(propL, nil); err != nil {
		t.Fatal(err)
	}
}

func TestD2ISaturation(t *testing.T) {
	cases := []struct {
		in   float64
		want int32
	}{
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt32},
		{math.Inf(-1), math.MinInt32},
		{1e100, math.MaxInt32},
		{-1e100, math.MinInt32},
		{3.99, 3},
		{-3.99, -3},
	}
	for _, c := range cases {
		if got := D2I(c.in); got != c.want {
			t.Errorf("D2I(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := D2L(1e300); got != math.MaxInt64 {
		t.Errorf("D2L(1e300) = %d", got)
	}
}

// TestFormatDouble pins FormatDouble to Java's Double.toString contract
// (JLS / java.lang.Double): decimal notation exactly when
// 1e-3 <= |d| < 1e7, otherwise "computerized scientific notation" with a
// mantissa that always carries at least one fractional digit and an
// exponent with no '+' sign or leading zeros. Every expectation below is
// the literal JDK output for that value.
func TestFormatDouble(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.0"},
		{math.Copysign(0, -1), "-0.0"},
		{1, "1.0"},
		{-2.5, "-2.5"},
		{66, "66.0"},
		{100.0, "100.0"},
		{math.Inf(1), "Infinity"},
		{math.Inf(-1), "-Infinity"},
		{math.NaN(), "NaN"},
		{0.30000000000000004, "0.30000000000000004"},
		{1.0 / 3.0, "0.3333333333333333"},
		{0.1, "0.1"},
		{12345.678, "12345.678"},

		// The 1e7 magnitude boundary: decimal below, scientific at and above.
		{9999999.0, "9999999.0"},
		{1e7, "1.0E7"},
		{-1e7, "-1.0E7"},
		{12345678.0, "1.2345678E7"},

		// The 1e-3 magnitude boundary: decimal at and above, scientific below.
		{0.001, "0.001"},
		{0.0001, "1.0E-4"},
		{0.0009999999999999998, "9.999999999999998E-4"},

		// Exponent spelling: no '+', no padding, mantissa keeps a ".0".
		{2.5e10, "2.5E10"},
		{1e100, "1.0E100"},
		{3.14e-20, "3.14E-20"},
		{1.7976931348623157e308, "1.7976931348623157E308"}, // Double.MAX_VALUE
	}
	for _, c := range cases {
		if got := FormatDouble(c.in); got != c.want {
			t.Errorf("FormatDouble(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestUnpairedSurrogateFidelity is the regression test for the char
// channel: Java strings are unrestricted UTF-16, so printing or
// concatenating a lone surrogate half must preserve the exact code unit
// instead of decaying to U+FFFD the way a naive rune-based
// implementation does. Internally lone halves ride in WTF-8 and must
// round-trip through every UTF-16 string primitive.
func TestUnpairedSurrogateFidelity(t *testing.T) {
	for _, u := range []uint16{0xD800, 0xDBFF, 0xDC00, 0xDFFF} {
		s := StringOf(CharValue(int32(u)), 'c')
		if strings.Contains(s, "�") {
			t.Fatalf("StringOf(%#x) degraded to U+FFFD", u)
		}
		if got := StrLen(s); got != 1 {
			t.Fatalf("StrLen(StringOf(%#x)) = %d, want 1", u, got)
		}
		c, ok := CharAt(s, 0)
		if !ok || uint16(c) != u {
			t.Errorf("CharAt(StringOf(%#x), 0) = %#x, %v; unit not preserved", u, c, ok)
		}
	}

	// A lone high surrogate embedded between ordinary chars keeps its
	// neighbors addressable at the right UTF-16 indices.
	env := &Env{}
	mixed, _ := GetStr(env.Concat(&Str{S: "a"}, env.NewStr(StringOf(CharValue(0xD834), 'c'))))
	mixed = mixed + "z"
	if got := StrLen(mixed); got != 3 {
		t.Fatalf("StrLen(mixed) = %d, want 3", got)
	}
	if c, ok := CharAt(mixed, 1); !ok || uint16(c) != 0xD834 {
		t.Errorf("CharAt(mixed, 1) = %#x, %v", c, ok)
	}
	if c, ok := CharAt(mixed, 2); !ok || rune(c) != 'z' {
		t.Errorf("CharAt(mixed, 2) = %#x, %v", c, ok)
	}
}

func TestStringHashMatchesJava(t *testing.T) {
	// Values computed with the JDK.
	cases := map[string]int32{
		"":      0,
		"a":     97,
		"ab":    3105, // 31*97 + 98
		"hello": 99162322,
		"Aa":    2112,
		"BB":    2112, // the classic collision with "Aa"
	}
	for s, want := range cases {
		if got := StringHash(s); got != want {
			t.Errorf("StringHash(%q) = %d, want %d", s, got, want)
		}
	}
}

func TestUTF16StringOps(t *testing.T) {
	s := "a☃b𝄞c" // includes a surrogate pair (𝄞 = U+1D11E)
	if got := StrLen(s); got != 6 {
		t.Fatalf("StrLen = %d, want 6 (UTF-16 units)", got)
	}
	if c, ok := CharAt(s, 1); !ok || rune(c) != '☃' {
		t.Errorf("CharAt(1) = %c, %v", rune(c), ok)
	}
	if c, ok := CharAt(s, 3); !ok || c < 0xD800 {
		t.Errorf("CharAt(3) should be a surrogate half, got %x %v", c, ok)
	}
	if _, ok := CharAt(s, 6); ok {
		t.Error("CharAt out of range succeeded")
	}
	sub, ok := Substring(s, 1, 3)
	if !ok || sub != "☃b" {
		t.Errorf("Substring(1,3) = %q, %v", sub, ok)
	}
	if _, ok := Substring(s, 3, 2); ok {
		t.Error("reversed substring bounds accepted")
	}
	full, ok := Substring(s, 0, 6)
	if !ok || full != s {
		t.Errorf("full substring = %q", full)
	}
	if got := IndexOfStr(s, "b𝄞"); got != 2 {
		t.Errorf("IndexOfStr = %d, want 2", got)
	}
	if got := IndexOfStr(s, "zz"); got != -1 {
		t.Errorf("IndexOfStr miss = %d", got)
	}
	if CompareStr("abc", "abd") >= 0 || CompareStr("abc", "abc") != 0 || CompareStr("abcd", "abc") <= 0 {
		t.Error("CompareStr ordering wrong")
	}
}

func TestStringOfAndRefString(t *testing.T) {
	if got := StringOf(IntValue(-5), 'i'); got != "-5" {
		t.Errorf("int: %q", got)
	}
	if got := StringOf(BoolValue(true), 'z'); got != "true" {
		t.Errorf("bool: %q", got)
	}
	if got := StringOf(CharValue('x'), 'c'); got != "x" {
		t.Errorf("char: %q", got)
	}
	if got := RefString(nil); got != "null" {
		t.Errorf("null: %q", got)
	}
	if got := RefString(&Str{S: "ok"}); got != "ok" {
		t.Errorf("str: %q", got)
	}
	env := &Env{}
	if c, ok := GetStr(env.Concat(&Str{S: "a"}, nil)); !ok || c != "anull" {
		t.Errorf("Concat with null: %q %v", c, ok)
	}
}

func TestEnvObjectsAndExceptions(t *testing.T) {
	var out bytes.Buffer
	env := &Env{Out: &out}
	ci := &ClassInfo{Name: "Thing", NumSlots: 2}
	a := env.NewObject(ci)
	b := env.NewObject(ci)
	if Identity(a) == Identity(b) {
		t.Error("distinct objects share identity")
	}
	if len(a.Fields) != 2 {
		t.Error("field storage not allocated")
	}
	arr := env.NewArray(3, 9)
	if len(arr.Elems) != 3 || arr.TypeID != 9 {
		t.Error("array allocation wrong")
	}

	exc := &ClassInfo{Name: "Boom", NumSlots: 1}
	func() {
		defer func() {
			r := recover()
			th, ok := r.(Thrown)
			if !ok {
				t.Fatalf("ThrowNew panicked with %T", r)
			}
			o := th.Val.R.(*Object)
			if msg, _ := GetStr(o.Fields[0].R); msg != "bang" {
				t.Errorf("message %q", msg)
			}
		}()
		env.ThrowNew(exc, "bang")
	}()

	env.Println("line")
	env.Print("x")
	if out.String() != "line\nx" {
		t.Errorf("output %q", out.String())
	}
}

func TestStepLimit(t *testing.T) {
	env := &Env{MaxSteps: 2}
	env.Step()
	env.Step()
	defer func() {
		if recover() != ErrStepLimit {
			t.Fatal("step limit did not trip")
		}
	}()
	env.Step()
}

func TestSubclassChain(t *testing.T) {
	a := &ClassInfo{Name: "A"}
	b := &ClassInfo{Name: "B", Super: a}
	c := &ClassInfo{Name: "C", Super: b}
	if !c.IsSubclassOf(a) || !c.IsSubclassOf(c) || a.IsSubclassOf(b) {
		t.Error("subclass relation wrong")
	}
}

func TestDRem(t *testing.T) {
	if got := DRem(5.5, 2.0); got != 1.5 {
		t.Errorf("5.5 %% 2.0 = %v", got)
	}
	if got := DRem(-5.5, 2.0); got != -1.5 {
		t.Errorf("-5.5 %% 2.0 = %v (Java keeps the dividend's sign)", got)
	}
	if !math.IsNaN(DRem(1, 0)) {
		t.Error("x % 0.0 must be NaN")
	}
}
