package rt

// This file is the session-cloning substrate under the warm-session
// pools: a deep copy of guest values that preserves everything a guest
// program can observe about its heap — aliasing structure (two statics
// holding the same array must hold the same clone), cycles, and object
// identity (Object.id feeds Identity and RefString, so a clone that
// renumbered objects would print different "Class@id" strings than the
// session it was copied from).
//
// A Cloner never executes guest code and never charges an Env: the
// session the values were copied FROM already paid the allocation
// budget for them, and the warm-pool machinery replays that charge onto
// the destination Env separately (see interp.Snapshot). Keeping the
// copy budget-free is what makes a cloned session bit-identical in
// budget drain to a fresh session that ran the same initialization.

// Cloner deep-copies values between sessions. One Cloner instance spans
// one logical copy operation: values cloned through the same Cloner
// share one identity map, so aliasing between them is preserved exactly.
type Cloner struct {
	seen map[Ref]Ref
	// classes remaps ClassInfo pointers from the source session's class
	// table to the destination session's (nil entries / nil map fall
	// back to the source pointer). Sessions compare ClassInfos by
	// pointer (IsSubclassOf, checked casts), so a clone that kept source
	// pointers would fail every instanceof in its new session.
	classes map[*ClassInfo]*ClassInfo
}

// NewCloner creates a cloner with the given class remapping (may be
// nil when source and destination share one class table).
func NewCloner(classes map[*ClassInfo]*ClassInfo) *Cloner {
	return &Cloner{seen: make(map[Ref]Ref), classes: classes}
}

// Value deep-copies one value.
func (c *Cloner) Value(v Value) Value {
	if v.R == nil {
		return v
	}
	return Value{I: v.I, D: v.D, R: c.ref(v.R)}
}

func (c *Cloner) class(ci *ClassInfo) *ClassInfo {
	if dst, ok := c.classes[ci]; ok && dst != nil {
		return dst
	}
	return ci
}

// ref copies one reference, recording the mapping before descending so
// cyclic structures terminate and aliased references collapse onto one
// clone.
func (c *Cloner) ref(r Ref) Ref {
	if dup, ok := c.seen[r]; ok {
		return dup
	}
	switch r := r.(type) {
	case *Str:
		dup := &Str{S: r.S}
		c.seen[r] = dup
		return dup
	case *Array:
		dup := &Array{Elems: make([]Value, len(r.Elems)), TypeID: r.TypeID}
		c.seen[r] = dup
		for i, e := range r.Elems {
			dup.Elems[i] = c.Value(e)
		}
		return dup
	case *Object:
		dup := &Object{Class: c.class(r.Class), Fields: make([]Value, len(r.Fields)), id: r.id}
		c.seen[r] = dup
		for i, f := range r.Fields {
			dup.Fields[i] = c.Value(f)
		}
		return dup
	}
	return r
}

// NextID reports the environment's object-id allocation cursor, so a
// session snapshot can record it.
func (e *Env) NextID() int64 { return e.nextID }

// SetNextID restores the object-id allocation cursor on a cloned
// session's environment. Without this, the first object a clone
// allocates would reuse an id the copied heap already holds, and
// identity hashes would diverge from a fresh session.
func (e *Env) SetNextID(id int64) { e.nextID = id }
