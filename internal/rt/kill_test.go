package rt

import (
	"errors"
	"fmt"
	"testing"
)

// TestKillReason pins the metric labels for budget kills, including
// wrapped sentinels (servers wrap run errors before classifying them).
func TestKillReason(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{ErrStepLimit, "step_limit"},
		{ErrAllocLimit, "alloc_limit"},
		{ErrInterrupted, "interrupt"},
		{fmt.Errorf("run: %w", ErrStepLimit), "step_limit"},
		{fmt.Errorf("run: %w", ErrInterrupted), "interrupt"},
		{errors.New("uncaught exception: NullPointerException"), ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := KillReason(c.err); got != c.want {
			t.Errorf("KillReason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
