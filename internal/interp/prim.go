package interp

import (
	"fmt"
	"math"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// evalPrim evaluates one non-trapping primitive operation. It is shared
// by the reference CST walker and the prepared register machine, so the
// two engines cannot drift on arithmetic. The four trapping division
// primitives (PIDiv/PIRem/PLDiv/PLRem) must have their zero-divisor
// check performed by the caller before this is reached; here they
// assume a non-zero divisor. Unary operations ignore b (the prepared
// engine passes the scratch register).
func (l *Loader) evalPrim(p core.PrimOp, a, b rt.Value) rt.Value {
	i32a, i32b := a.Int(), b.Int()
	switch p {
	case core.PIAdd:
		return rt.IntValue(i32a + i32b)
	case core.PISub:
		return rt.IntValue(i32a - i32b)
	case core.PIMul:
		return rt.IntValue(i32a * i32b)
	case core.PIDiv:
		return rt.IntValue(rt.IDiv(i32a, i32b))
	case core.PIRem:
		return rt.IntValue(rt.IRem(i32a, i32b))
	case core.PINeg:
		return rt.IntValue(-i32a)
	case core.PIShl:
		return rt.IntValue(i32a << (uint32(i32b) & 31))
	case core.PIShr:
		return rt.IntValue(i32a >> (uint32(i32b) & 31))
	case core.PIAnd:
		return rt.IntValue(i32a & i32b)
	case core.PIOr:
		return rt.IntValue(i32a | i32b)
	case core.PIXor:
		return rt.IntValue(i32a ^ i32b)
	case core.PIEq:
		return rt.BoolValue(i32a == i32b)
	case core.PINe:
		return rt.BoolValue(i32a != i32b)
	case core.PILt:
		return rt.BoolValue(i32a < i32b)
	case core.PILe:
		return rt.BoolValue(i32a <= i32b)
	case core.PIGt:
		return rt.BoolValue(i32a > i32b)
	case core.PIGe:
		return rt.BoolValue(i32a >= i32b)
	case core.PIAbs:
		if i32a < 0 {
			return rt.IntValue(-i32a)
		}
		return rt.IntValue(i32a)
	case core.PIMin:
		if i32a < i32b {
			return rt.IntValue(i32a)
		}
		return rt.IntValue(i32b)
	case core.PIMax:
		if i32a > i32b {
			return rt.IntValue(i32a)
		}
		return rt.IntValue(i32b)
	case core.PI2L:
		return rt.LongValue(int64(i32a))
	case core.PI2D:
		return rt.DoubleValue(float64(i32a))
	case core.PI2C:
		return rt.CharValue(rune(uint16(i32a)))

	case core.PLAdd:
		return rt.LongValue(a.I + b.I)
	case core.PLSub:
		return rt.LongValue(a.I - b.I)
	case core.PLMul:
		return rt.LongValue(a.I * b.I)
	case core.PLDiv:
		return rt.LongValue(rt.LDiv(a.I, b.I))
	case core.PLRem:
		return rt.LongValue(rt.LRem(a.I, b.I))
	case core.PLNeg:
		return rt.LongValue(-a.I)
	case core.PLShl:
		return rt.LongValue(a.I << (uint32(i32b) & 63))
	case core.PLShr:
		return rt.LongValue(a.I >> (uint32(i32b) & 63))
	case core.PLAnd:
		return rt.LongValue(a.I & b.I)
	case core.PLOr:
		return rt.LongValue(a.I | b.I)
	case core.PLXor:
		return rt.LongValue(a.I ^ b.I)
	case core.PLEq:
		return rt.BoolValue(a.I == b.I)
	case core.PLNe:
		return rt.BoolValue(a.I != b.I)
	case core.PLLt:
		return rt.BoolValue(a.I < b.I)
	case core.PLLe:
		return rt.BoolValue(a.I <= b.I)
	case core.PLGt:
		return rt.BoolValue(a.I > b.I)
	case core.PLGe:
		return rt.BoolValue(a.I >= b.I)
	case core.PLAbs:
		if a.I < 0 {
			return rt.LongValue(-a.I)
		}
		return rt.LongValue(a.I)
	case core.PLMin:
		if a.I < b.I {
			return rt.LongValue(a.I)
		}
		return rt.LongValue(b.I)
	case core.PLMax:
		if a.I > b.I {
			return rt.LongValue(a.I)
		}
		return rt.LongValue(b.I)
	case core.PL2I:
		return rt.IntValue(int32(a.I))
	case core.PL2D:
		return rt.DoubleValue(float64(a.I))

	case core.PDAdd:
		return rt.DoubleValue(a.D + b.D)
	case core.PDSub:
		return rt.DoubleValue(a.D - b.D)
	case core.PDMul:
		return rt.DoubleValue(a.D * b.D)
	case core.PDDiv:
		return rt.DoubleValue(a.D / b.D)
	case core.PDRem:
		return rt.DoubleValue(rt.DRem(a.D, b.D))
	case core.PDNeg:
		return rt.DoubleValue(-a.D)
	case core.PDEq:
		return rt.BoolValue(a.D == b.D)
	case core.PDNe:
		return rt.BoolValue(a.D != b.D)
	case core.PDLt:
		return rt.BoolValue(a.D < b.D)
	case core.PDLe:
		return rt.BoolValue(a.D <= b.D)
	case core.PDGt:
		return rt.BoolValue(a.D > b.D)
	case core.PDGe:
		return rt.BoolValue(a.D >= b.D)
	case core.PDAbs:
		return rt.DoubleValue(math.Abs(a.D))
	case core.PDMin:
		return rt.DoubleValue(math.Min(a.D, b.D))
	case core.PDMax:
		return rt.DoubleValue(math.Max(a.D, b.D))
	case core.PDSqrt:
		return rt.DoubleValue(math.Sqrt(a.D))
	case core.PDPow:
		return rt.DoubleValue(math.Pow(a.D, b.D))
	case core.PDFloor:
		return rt.DoubleValue(math.Floor(a.D))
	case core.PDCeil:
		return rt.DoubleValue(math.Ceil(a.D))
	case core.PDLog:
		return rt.DoubleValue(math.Log(a.D))
	case core.PDExp:
		return rt.DoubleValue(math.Exp(a.D))
	case core.PDSin:
		return rt.DoubleValue(math.Sin(a.D))
	case core.PDCos:
		return rt.DoubleValue(math.Cos(a.D))
	case core.PD2I:
		return rt.IntValue(rt.D2I(a.D))
	case core.PD2L:
		return rt.LongValue(rt.D2L(a.D))

	case core.PBNot:
		return rt.BoolValue(a.I == 0)
	case core.PBAnd:
		return rt.BoolValue(a.I != 0 && b.I != 0)
	case core.PBOr:
		return rt.BoolValue(a.I != 0 || b.I != 0)
	case core.PBXor:
		return rt.BoolValue((a.I != 0) != (b.I != 0))
	case core.PBEq:
		return rt.BoolValue((a.I != 0) == (b.I != 0))
	case core.PBNe:
		return rt.BoolValue((a.I != 0) != (b.I != 0))

	case core.PC2I:
		return rt.IntValue(int32(uint16(a.I)))

	case core.PREq:
		return rt.BoolValue(sameRef(a.R, b.R))
	case core.PRNe:
		return rt.BoolValue(!sameRef(a.R, b.R))

	case core.PSConcat:
		return rt.RefValue(l.Env.Concat(a.R, b.R))
	case core.PSOfInt:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a, 'i')})
	case core.PSOfLong:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a, 'l')})
	case core.PSOfDouble:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a, 'd')})
	case core.PSOfBool:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a, 'z')})
	case core.PSOfChar:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a, 'c')})
	case core.PSOfRef:
		return rt.RefValue(&rt.Str{S: rt.RefString(a.R)})
	}
	panic(fmt.Sprintf("interp: unhandled primitive %s", p))
}
