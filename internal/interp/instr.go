package interp

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/lang/sema"
	"safetsa/internal/rt"
)

func (l *Loader) execInstr(fr *frame, in *core.Instr) {
	a := func(i int) rt.Value { return fr.val(in.Args[i]) }
	setv := func(v rt.Value) {
		if in.HasResult() {
			fr.vals[in.ID] = v
		}
	}

	switch in.Op {
	case core.OpParam:
		setv(fr.args[in.Aux])
	case core.OpConst:
		switch in.Const.Kind {
		case core.KInt, core.KLong, core.KChar, core.KBool:
			setv(rt.Value{I: in.Const.I})
		case core.KDouble:
			setv(rt.Value{D: in.Const.D})
		case core.KString:
			setv(rt.RefValue(&rt.Str{S: in.Const.S}))
		case core.KNull:
			setv(rt.Value{})
		}
	case core.OpPrim, core.OpXPrim:
		setv(l.execPrim(fr, in))
	case core.OpNullCheck:
		v := a(0)
		if v.R == nil {
			l.raise(fr, in, l.newExc(l.exc.NPE, "null dereference"))
		}
		setv(v)
	case core.OpIndexCheck:
		arr := a(0).R.(*rt.Array)
		idx := a(1).Int()
		if idx < 0 || int(idx) >= len(arr.Elems) {
			l.raise(fr, in, l.newExc(l.exc.Bounds,
				fmt.Sprintf("index %d out of bounds for length %d", idx, len(arr.Elems))))
		}
		setv(rt.IntValue(idx))
	case core.OpUpcast:
		v := a(0)
		if v.R != nil && !l.isInstance(v.R, in.TypeArg) {
			l.raise(fr, in, l.newExc(l.exc.Cast,
				"cannot cast to "+l.Mod.Types.Describe(in.TypeArg)))
		}
		setv(v)
	case core.OpDowncast:
		setv(a(0))
	case core.OpInstanceOf:
		v := a(0)
		setv(rt.BoolValue(v.R != nil && l.isInstance(v.R, in.TypeArg)))
	case core.OpGetField:
		fld := l.Mod.Fields[in.Field]
		if fld.Static {
			setv(l.classes[fld.Owner].Statics[fld.Slot])
			return
		}
		obj := a(0).R.(*rt.Object)
		setv(obj.Fields[fld.Slot])
	case core.OpSetField:
		fld := l.Mod.Fields[in.Field]
		if fld.Static {
			l.classes[fld.Owner].Statics[fld.Slot] = a(0)
			return
		}
		obj := a(0).R.(*rt.Object)
		obj.Fields[fld.Slot] = a(1)
	case core.OpGetElt:
		arr := a(0).R.(*rt.Array)
		setv(arr.Elems[a(1).Int()])
	case core.OpSetElt:
		arr := a(0).R.(*rt.Array)
		arr.Elems[a(1).Int()] = a(2)
	case core.OpArrayLen:
		arr := a(0).R.(*rt.Array)
		setv(rt.IntValue(int32(len(arr.Elems))))
	case core.OpNew:
		setv(rt.RefValue(l.Env.NewObject(l.classes[in.TypeArg])))
	case core.OpNewArray:
		n := a(0).Int()
		if n < 0 {
			l.raise(fr, in, l.newExc(l.exc.NegSize, fmt.Sprintf("%d", n)))
		}
		setv(rt.RefValue(l.Env.NewArray(n, int32(in.TypeArg))))
	case core.OpXCall, core.OpXDispatch:
		setv(l.execCall(fr, in))
	case core.OpCatch:
		setv(fr.caught)
	default:
		panic(fmt.Sprintf("interp: unhandled opcode %s", in.Op))
	}
}

// isInstance tests runtime type membership against a module type id.
func (l *Loader) isInstance(r rt.Ref, t core.TypeID) bool {
	tt := l.Mod.Types
	want := tt.MustGet(t)
	switch r := r.(type) {
	case *rt.Str:
		return t == tt.String || t == tt.Object
	case *rt.Array:
		if t == tt.Object {
			return true
		}
		return want.Kind == core.TArray && core.TypeID(r.TypeID) == t
	case *rt.Object:
		if want.Kind != core.TClass {
			return false
		}
		target := l.classes[t]
		return target != nil && r.Class.IsSubclassOf(target)
	}
	return false
}

// execCall performs xcall/xdispatch, converting an uncaught callee
// exception into a transfer along this site's exception edge.
func (l *Loader) execCall(fr *frame, in *core.Instr) rt.Value {
	mr := &l.Mod.Methods[in.Method]
	args := make([]rt.Value, len(in.Args))
	for i, id := range in.Args {
		args[i] = fr.val(id)
	}

	target := in.Method
	if in.Op == core.OpXDispatch {
		// Polymorphic association through the dispatch-table slot
		// (section 6). Host-implemented receivers (strings, which have
		// no dispatch table) bind statically — their classes are final.
		if recv, ok := args[0].R.(*rt.Object); ok && int(mr.VSlot) < len(recv.Class.VTable) {
			target = recv.Class.VTable[mr.VSlot]
			mr = &l.Mod.Methods[target]
		}
	}

	var out rt.Value
	call := func() {
		if mr.FuncIdx >= 0 {
			// Streaming sessions gate every body behind its admission;
			// a rejected stream unwinds past any handler in between.
			if l.gate != nil {
				if err := l.gate(int(mr.FuncIdx)); err != nil {
					panic(streamAbort{err})
				}
			}
			out = l.callFunc(l.Mod.Funcs[mr.FuncIdx], args)
			return
		}
		out = l.native(mr, args)
	}
	if h := fr.f.HandlerOf[in]; h != nil {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if t, ok := r.(rt.Thrown); ok {
					panic(tsaThrow{val: t.Val, edge: fr.f.ExcEdge[in], handler: h})
				}
				panic(r)
			}()
			call()
		}()
		return out
	}
	call()
	return out
}

// native executes an imported (host-environment) method.
func (l *Loader) native(mr *core.MethodRef, args []rt.Value) rt.Value {
	if mr.IsCtor {
		// Imported throwable constructors: store the message.
		if len(args) == 2 {
			if obj, ok := args[0].R.(*rt.Object); ok && len(obj.Fields) > 0 {
				obj.Fields[0] = args[1]
			}
		}
		return rt.Value{}
	}
	env := l.Env
	str := func(i int) string {
		s, _ := rt.GetStr(args[i].R)
		return s
	}
	switch sema.BuiltinID(mr.Builtin) {
	case sema.BStrLength:
		return rt.IntValue(rt.StrLen(str(0)))
	case sema.BStrCharAt:
		c, ok := rt.CharAt(str(0), args[1].Int())
		if !ok {
			env.ThrowNew(l.exc.Bounds, fmt.Sprintf("string index %d", args[1].Int()))
		}
		return rt.CharValue(rune(c))
	case sema.BStrSubstring:
		s, ok := rt.Substring(str(0), args[1].Int(), args[2].Int())
		if !ok {
			env.ThrowNew(l.exc.Bounds, "substring bounds")
		}
		return rt.RefValue(&rt.Str{S: s})
	case sema.BStrEquals:
		o, ok := rt.GetStr(args[1].R)
		return rt.BoolValue(ok && o == str(0))
	case sema.BStrCompareTo:
		return rt.IntValue(rt.CompareStr(str(0), str(1)))
	case sema.BStrIndexOf:
		return rt.IntValue(rt.IndexOfStr(str(0), str(1)))
	case sema.BStrHashCode:
		return rt.IntValue(rt.StringHash(str(0)))
	case sema.BObjHashCode:
		return rt.IntValue(int32(rt.Identity(args[0].R)))
	case sema.BObjEquals:
		return rt.BoolValue(sameRef(args[0].R, args[1].R))
	case sema.BObjToString:
		return rt.RefValue(&rt.Str{S: rt.RefString(args[0].R)})
	case sema.BExcGetMessage:
		if obj, ok := args[0].R.(*rt.Object); ok && len(obj.Fields) > 0 {
			return obj.Fields[0]
		}
		return rt.Value{}
	case sema.BPrintlnString:
		env.Println(rt.RefString(args[0].R))
	case sema.BPrintlnInt:
		env.Println(rt.StringOf(args[0], 'i'))
	case sema.BPrintlnLong:
		env.Println(rt.StringOf(args[0], 'l'))
	case sema.BPrintlnDouble:
		env.Println(rt.StringOf(args[0], 'd'))
	case sema.BPrintlnBool:
		env.Println(rt.StringOf(args[0], 'z'))
	case sema.BPrintlnChar:
		env.Println(rt.StringOf(args[0], 'c'))
	case sema.BPrintlnEmpty:
		env.Println("")
	case sema.BPrintString:
		env.Print(rt.RefString(args[0].R))
	case sema.BPrintInt:
		env.Print(rt.StringOf(args[0], 'i'))
	case sema.BPrintLong:
		env.Print(rt.StringOf(args[0], 'l'))
	case sema.BPrintDouble:
		env.Print(rt.StringOf(args[0], 'd'))
	case sema.BPrintBool:
		env.Print(rt.StringOf(args[0], 'z'))
	case sema.BPrintChar:
		env.Print(rt.StringOf(args[0], 'c'))
	default:
		panic(fmt.Sprintf("interp: unimplemented native method %s (builtin %d)",
			mr.Name, mr.Builtin))
	}
	return rt.Value{}
}

func sameRef(a, b rt.Ref) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

// execPrim evaluates one primitive operation: the zero-divisor checks
// of the trapping divisions (which raise along this site's exception
// edge), then the shared evaluator.
func (l *Loader) execPrim(fr *frame, in *core.Instr) rt.Value {
	a := fr.val(in.Args[0])
	var b rt.Value
	if len(in.Args) > 1 {
		b = fr.val(in.Args[1])
	}
	switch in.Prim {
	case core.PIDiv, core.PIRem:
		if b.Int() == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
	case core.PLDiv, core.PLRem:
		if b.I == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
	}
	return l.evalPrim(in.Prim, a, b)
}
