package interp

import (
	"fmt"
	"math"

	"safetsa/internal/core"
	"safetsa/internal/lang/sema"
	"safetsa/internal/rt"
)

func (l *Loader) execInstr(fr *frame, in *core.Instr) {
	a := func(i int) rt.Value { return fr.val(in.Args[i]) }
	setv := func(v rt.Value) {
		if in.HasResult() {
			fr.vals[in.ID] = v
		}
	}

	switch in.Op {
	case core.OpParam:
		setv(fr.args[in.Aux])
	case core.OpConst:
		switch in.Const.Kind {
		case core.KInt, core.KLong, core.KChar, core.KBool:
			setv(rt.Value{I: in.Const.I})
		case core.KDouble:
			setv(rt.Value{D: in.Const.D})
		case core.KString:
			setv(rt.RefValue(&rt.Str{S: in.Const.S}))
		case core.KNull:
			setv(rt.Value{})
		}
	case core.OpPrim, core.OpXPrim:
		setv(l.execPrim(fr, in))
	case core.OpNullCheck:
		v := a(0)
		if v.R == nil {
			l.raise(fr, in, l.newExc(l.exc.NPE, "null dereference"))
		}
		setv(v)
	case core.OpIndexCheck:
		arr := a(0).R.(*rt.Array)
		idx := a(1).Int()
		if idx < 0 || int(idx) >= len(arr.Elems) {
			l.raise(fr, in, l.newExc(l.exc.Bounds,
				fmt.Sprintf("index %d out of bounds for length %d", idx, len(arr.Elems))))
		}
		setv(rt.IntValue(idx))
	case core.OpUpcast:
		v := a(0)
		if v.R != nil && !l.isInstance(v.R, in.TypeArg) {
			l.raise(fr, in, l.newExc(l.exc.Cast,
				"cannot cast to "+l.Mod.Types.Describe(in.TypeArg)))
		}
		setv(v)
	case core.OpDowncast:
		setv(a(0))
	case core.OpInstanceOf:
		v := a(0)
		setv(rt.BoolValue(v.R != nil && l.isInstance(v.R, in.TypeArg)))
	case core.OpGetField:
		fld := l.Mod.Fields[in.Field]
		if fld.Static {
			setv(l.classes[fld.Owner].Statics[fld.Slot])
			return
		}
		obj := a(0).R.(*rt.Object)
		setv(obj.Fields[fld.Slot])
	case core.OpSetField:
		fld := l.Mod.Fields[in.Field]
		if fld.Static {
			l.classes[fld.Owner].Statics[fld.Slot] = a(0)
			return
		}
		obj := a(0).R.(*rt.Object)
		obj.Fields[fld.Slot] = a(1)
	case core.OpGetElt:
		arr := a(0).R.(*rt.Array)
		setv(arr.Elems[a(1).Int()])
	case core.OpSetElt:
		arr := a(0).R.(*rt.Array)
		arr.Elems[a(1).Int()] = a(2)
	case core.OpArrayLen:
		arr := a(0).R.(*rt.Array)
		setv(rt.IntValue(int32(len(arr.Elems))))
	case core.OpNew:
		setv(rt.RefValue(l.Env.NewObject(l.classes[in.TypeArg])))
	case core.OpNewArray:
		n := a(0).Int()
		if n < 0 {
			l.raise(fr, in, l.newExc(l.exc.NegSize, fmt.Sprintf("%d", n)))
		}
		setv(rt.RefValue(l.Env.NewArray(n, int32(in.TypeArg))))
	case core.OpXCall, core.OpXDispatch:
		setv(l.execCall(fr, in))
	case core.OpCatch:
		setv(fr.caught)
	default:
		panic(fmt.Sprintf("interp: unhandled opcode %s", in.Op))
	}
}

// isInstance tests runtime type membership against a module type id.
func (l *Loader) isInstance(r rt.Ref, t core.TypeID) bool {
	tt := l.Mod.Types
	want := tt.MustGet(t)
	switch r := r.(type) {
	case *rt.Str:
		return t == tt.String || t == tt.Object
	case *rt.Array:
		if t == tt.Object {
			return true
		}
		return want.Kind == core.TArray && core.TypeID(r.TypeID) == t
	case *rt.Object:
		if want.Kind != core.TClass {
			return false
		}
		target := l.classes[t]
		return target != nil && r.Class.IsSubclassOf(target)
	}
	return false
}

// execCall performs xcall/xdispatch, converting an uncaught callee
// exception into a transfer along this site's exception edge.
func (l *Loader) execCall(fr *frame, in *core.Instr) rt.Value {
	mr := &l.Mod.Methods[in.Method]
	args := make([]rt.Value, len(in.Args))
	for i, id := range in.Args {
		args[i] = fr.val(id)
	}

	target := in.Method
	if in.Op == core.OpXDispatch {
		// Polymorphic association through the dispatch-table slot
		// (section 6). Host-implemented receivers (strings, which have
		// no dispatch table) bind statically — their classes are final.
		if recv, ok := args[0].R.(*rt.Object); ok && int(mr.VSlot) < len(recv.Class.VTable) {
			target = recv.Class.VTable[mr.VSlot]
			mr = &l.Mod.Methods[target]
		}
	}

	var out rt.Value
	call := func() {
		if mr.FuncIdx >= 0 {
			out = l.callFunc(l.Mod.Funcs[mr.FuncIdx], args)
			return
		}
		out = l.native(mr, args)
	}
	if h := fr.f.HandlerOf[in]; h != nil {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				if t, ok := r.(rt.Thrown); ok {
					panic(tsaThrow{val: t.Val, edge: fr.f.ExcEdge[in], handler: h})
				}
				panic(r)
			}()
			call()
		}()
		return out
	}
	call()
	return out
}

// native executes an imported (host-environment) method.
func (l *Loader) native(mr *core.MethodRef, args []rt.Value) rt.Value {
	if mr.IsCtor {
		// Imported throwable constructors: store the message.
		if len(args) == 2 {
			if obj, ok := args[0].R.(*rt.Object); ok && len(obj.Fields) > 0 {
				obj.Fields[0] = args[1]
			}
		}
		return rt.Value{}
	}
	env := l.Env
	str := func(i int) string {
		s, _ := rt.GetStr(args[i].R)
		return s
	}
	switch sema.BuiltinID(mr.Builtin) {
	case sema.BStrLength:
		return rt.IntValue(rt.StrLen(str(0)))
	case sema.BStrCharAt:
		c, ok := rt.CharAt(str(0), args[1].Int())
		if !ok {
			env.ThrowNew(l.exc.Bounds, fmt.Sprintf("string index %d", args[1].Int()))
		}
		return rt.CharValue(rune(c))
	case sema.BStrSubstring:
		s, ok := rt.Substring(str(0), args[1].Int(), args[2].Int())
		if !ok {
			env.ThrowNew(l.exc.Bounds, "substring bounds")
		}
		return rt.RefValue(&rt.Str{S: s})
	case sema.BStrEquals:
		o, ok := rt.GetStr(args[1].R)
		return rt.BoolValue(ok && o == str(0))
	case sema.BStrCompareTo:
		return rt.IntValue(rt.CompareStr(str(0), str(1)))
	case sema.BStrIndexOf:
		return rt.IntValue(rt.IndexOfStr(str(0), str(1)))
	case sema.BStrHashCode:
		return rt.IntValue(rt.StringHash(str(0)))
	case sema.BObjHashCode:
		return rt.IntValue(int32(rt.Identity(args[0].R)))
	case sema.BObjEquals:
		return rt.BoolValue(sameRef(args[0].R, args[1].R))
	case sema.BObjToString:
		return rt.RefValue(&rt.Str{S: rt.RefString(args[0].R)})
	case sema.BExcGetMessage:
		if obj, ok := args[0].R.(*rt.Object); ok && len(obj.Fields) > 0 {
			return obj.Fields[0]
		}
		return rt.Value{}
	case sema.BPrintlnString:
		env.Println(rt.RefString(args[0].R))
	case sema.BPrintlnInt:
		env.Println(rt.StringOf(args[0], 'i'))
	case sema.BPrintlnLong:
		env.Println(rt.StringOf(args[0], 'l'))
	case sema.BPrintlnDouble:
		env.Println(rt.StringOf(args[0], 'd'))
	case sema.BPrintlnBool:
		env.Println(rt.StringOf(args[0], 'z'))
	case sema.BPrintlnChar:
		env.Println(rt.StringOf(args[0], 'c'))
	case sema.BPrintlnEmpty:
		env.Println("")
	case sema.BPrintString:
		env.Print(rt.RefString(args[0].R))
	case sema.BPrintInt:
		env.Print(rt.StringOf(args[0], 'i'))
	case sema.BPrintLong:
		env.Print(rt.StringOf(args[0], 'l'))
	case sema.BPrintDouble:
		env.Print(rt.StringOf(args[0], 'd'))
	case sema.BPrintBool:
		env.Print(rt.StringOf(args[0], 'z'))
	case sema.BPrintChar:
		env.Print(rt.StringOf(args[0], 'c'))
	default:
		panic(fmt.Sprintf("interp: unimplemented native method %s (builtin %d)",
			mr.Name, mr.Builtin))
	}
	return rt.Value{}
}

func sameRef(a, b rt.Ref) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a == b
}

// execPrim evaluates one primitive operation.
func (l *Loader) execPrim(fr *frame, in *core.Instr) rt.Value {
	a := func(i int) rt.Value { return fr.val(in.Args[i]) }
	i32 := func(i int) int32 { return a(i).Int() }
	i64 := func(i int) int64 { return a(i).I }
	f64 := func(i int) float64 { return a(i).D }

	switch in.Prim {
	case core.PIAdd:
		return rt.IntValue(i32(0) + i32(1))
	case core.PISub:
		return rt.IntValue(i32(0) - i32(1))
	case core.PIMul:
		return rt.IntValue(i32(0) * i32(1))
	case core.PIDiv:
		if i32(1) == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
		return rt.IntValue(rt.IDiv(i32(0), i32(1)))
	case core.PIRem:
		if i32(1) == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
		return rt.IntValue(rt.IRem(i32(0), i32(1)))
	case core.PINeg:
		return rt.IntValue(-i32(0))
	case core.PIShl:
		return rt.IntValue(i32(0) << (uint32(i32(1)) & 31))
	case core.PIShr:
		return rt.IntValue(i32(0) >> (uint32(i32(1)) & 31))
	case core.PIAnd:
		return rt.IntValue(i32(0) & i32(1))
	case core.PIOr:
		return rt.IntValue(i32(0) | i32(1))
	case core.PIXor:
		return rt.IntValue(i32(0) ^ i32(1))
	case core.PIEq:
		return rt.BoolValue(i32(0) == i32(1))
	case core.PINe:
		return rt.BoolValue(i32(0) != i32(1))
	case core.PILt:
		return rt.BoolValue(i32(0) < i32(1))
	case core.PILe:
		return rt.BoolValue(i32(0) <= i32(1))
	case core.PIGt:
		return rt.BoolValue(i32(0) > i32(1))
	case core.PIGe:
		return rt.BoolValue(i32(0) >= i32(1))
	case core.PIAbs:
		v := i32(0)
		if v < 0 {
			v = -v
		}
		return rt.IntValue(v)
	case core.PIMin:
		if i32(0) < i32(1) {
			return rt.IntValue(i32(0))
		}
		return rt.IntValue(i32(1))
	case core.PIMax:
		if i32(0) > i32(1) {
			return rt.IntValue(i32(0))
		}
		return rt.IntValue(i32(1))
	case core.PI2L:
		return rt.LongValue(int64(i32(0)))
	case core.PI2D:
		return rt.DoubleValue(float64(i32(0)))
	case core.PI2C:
		return rt.CharValue(rune(uint16(i32(0))))

	case core.PLAdd:
		return rt.LongValue(i64(0) + i64(1))
	case core.PLSub:
		return rt.LongValue(i64(0) - i64(1))
	case core.PLMul:
		return rt.LongValue(i64(0) * i64(1))
	case core.PLDiv:
		if i64(1) == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
		return rt.LongValue(rt.LDiv(i64(0), i64(1)))
	case core.PLRem:
		if i64(1) == 0 {
			l.raise(fr, in, l.newExc(l.exc.Arith, "/ by zero"))
		}
		return rt.LongValue(rt.LRem(i64(0), i64(1)))
	case core.PLNeg:
		return rt.LongValue(-i64(0))
	case core.PLShl:
		return rt.LongValue(i64(0) << (uint32(i32(1)) & 63))
	case core.PLShr:
		return rt.LongValue(i64(0) >> (uint32(i32(1)) & 63))
	case core.PLAnd:
		return rt.LongValue(i64(0) & i64(1))
	case core.PLOr:
		return rt.LongValue(i64(0) | i64(1))
	case core.PLXor:
		return rt.LongValue(i64(0) ^ i64(1))
	case core.PLEq:
		return rt.BoolValue(i64(0) == i64(1))
	case core.PLNe:
		return rt.BoolValue(i64(0) != i64(1))
	case core.PLLt:
		return rt.BoolValue(i64(0) < i64(1))
	case core.PLLe:
		return rt.BoolValue(i64(0) <= i64(1))
	case core.PLGt:
		return rt.BoolValue(i64(0) > i64(1))
	case core.PLGe:
		return rt.BoolValue(i64(0) >= i64(1))
	case core.PLAbs:
		v := i64(0)
		if v < 0 {
			v = -v
		}
		return rt.LongValue(v)
	case core.PLMin:
		if i64(0) < i64(1) {
			return rt.LongValue(i64(0))
		}
		return rt.LongValue(i64(1))
	case core.PLMax:
		if i64(0) > i64(1) {
			return rt.LongValue(i64(0))
		}
		return rt.LongValue(i64(1))
	case core.PL2I:
		return rt.IntValue(int32(i64(0)))
	case core.PL2D:
		return rt.DoubleValue(float64(i64(0)))

	case core.PDAdd:
		return rt.DoubleValue(f64(0) + f64(1))
	case core.PDSub:
		return rt.DoubleValue(f64(0) - f64(1))
	case core.PDMul:
		return rt.DoubleValue(f64(0) * f64(1))
	case core.PDDiv:
		return rt.DoubleValue(f64(0) / f64(1))
	case core.PDRem:
		return rt.DoubleValue(rt.DRem(f64(0), f64(1)))
	case core.PDNeg:
		return rt.DoubleValue(-f64(0))
	case core.PDEq:
		return rt.BoolValue(f64(0) == f64(1))
	case core.PDNe:
		return rt.BoolValue(f64(0) != f64(1))
	case core.PDLt:
		return rt.BoolValue(f64(0) < f64(1))
	case core.PDLe:
		return rt.BoolValue(f64(0) <= f64(1))
	case core.PDGt:
		return rt.BoolValue(f64(0) > f64(1))
	case core.PDGe:
		return rt.BoolValue(f64(0) >= f64(1))
	case core.PDAbs:
		return rt.DoubleValue(math.Abs(f64(0)))
	case core.PDMin:
		return rt.DoubleValue(math.Min(f64(0), f64(1)))
	case core.PDMax:
		return rt.DoubleValue(math.Max(f64(0), f64(1)))
	case core.PDSqrt:
		return rt.DoubleValue(math.Sqrt(f64(0)))
	case core.PDPow:
		return rt.DoubleValue(math.Pow(f64(0), f64(1)))
	case core.PDFloor:
		return rt.DoubleValue(math.Floor(f64(0)))
	case core.PDCeil:
		return rt.DoubleValue(math.Ceil(f64(0)))
	case core.PDLog:
		return rt.DoubleValue(math.Log(f64(0)))
	case core.PDExp:
		return rt.DoubleValue(math.Exp(f64(0)))
	case core.PDSin:
		return rt.DoubleValue(math.Sin(f64(0)))
	case core.PDCos:
		return rt.DoubleValue(math.Cos(f64(0)))
	case core.PD2I:
		return rt.IntValue(rt.D2I(f64(0)))
	case core.PD2L:
		return rt.LongValue(rt.D2L(f64(0)))

	case core.PBNot:
		return rt.BoolValue(a(0).I == 0)
	case core.PBAnd:
		return rt.BoolValue(a(0).I != 0 && a(1).I != 0)
	case core.PBOr:
		return rt.BoolValue(a(0).I != 0 || a(1).I != 0)
	case core.PBXor:
		return rt.BoolValue((a(0).I != 0) != (a(1).I != 0))
	case core.PBEq:
		return rt.BoolValue((a(0).I != 0) == (a(1).I != 0))
	case core.PBNe:
		return rt.BoolValue((a(0).I != 0) != (a(1).I != 0))

	case core.PC2I:
		return rt.IntValue(int32(uint16(a(0).I)))

	case core.PREq:
		return rt.BoolValue(sameRef(a(0).R, a(1).R))
	case core.PRNe:
		return rt.BoolValue(!sameRef(a(0).R, a(1).R))

	case core.PSConcat:
		return rt.RefValue(l.Env.Concat(a(0).R, a(1).R))
	case core.PSOfInt:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a(0), 'i')})
	case core.PSOfLong:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a(0), 'l')})
	case core.PSOfDouble:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a(0), 'd')})
	case core.PSOfBool:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a(0), 'z')})
	case core.PSOfChar:
		return rt.RefValue(&rt.Str{S: rt.StringOf(a(0), 'c')})
	case core.PSOfRef:
		return rt.RefValue(&rt.Str{S: rt.RefString(a(0).R)})
	}
	panic(fmt.Sprintf("interp: unhandled primitive %s", in.Prim))
}
