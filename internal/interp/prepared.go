package interp

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// This file is the execution half of the prepared engine: a flat
// register machine over the []PreparedInst form built by Prepare. It
// shares the Loader's class metadata, exception classes, native-method
// table, and primitive evaluator with the reference CST walker, and
// runs under the same rt.Env budgets — every opcode below pCtrl charges
// exactly one step, mirroring the reference evaluator's one step per
// straight-line instruction plus one per loop iteration.

// LoadTrustedPrepared is LoadTrusted for a session that executes the
// prepared form: same link checks, class metadata, and static
// initializers, but every function body (including the initializers
// themselves) runs on the register machine. prep must have been built
// by Prepare from this exact module; like the module, it is read-only
// and may back any number of concurrent sessions.
func LoadTrustedPrepared(mod *core.Module, prep *Prepared, env *rt.Env) (*Loader, error) {
	if prep == nil || len(prep.Funcs) != len(mod.Funcs) {
		return nil, fmt.Errorf("interp: prepared form does not match module")
	}
	l, err := loadCommon(mod, env)
	if err != nil {
		return nil, err
	}
	l.prep = prep
	if err := l.RunStaticInit(); err != nil {
		return nil, err
	}
	return l, nil
}

// RunPrepared loads a verified module with its prepared form and runs
// the entry point on the register machine — the prepared-engine
// counterpart of LoadTrusted + RunMain.
func RunPrepared(mod *core.Module, prep *Prepared, env *rt.Env) error {
	l, err := LoadTrustedPrepared(mod, prep, env)
	if err != nil {
		return err
	}
	return l.RunMain()
}

// applyMoves performs one parallel move set (the phi writes of a block
// entry): all sources are read before any destination is written.
func applyMoves(regs []rt.Value, mv []Move) {
	switch len(mv) {
	case 0:
	case 1:
		regs[mv[0].Dst] = regs[mv[0].Src]
	default:
		var buf [8]rt.Value
		tmp := buf[:0]
		if len(mv) > len(buf) {
			tmp = make([]rt.Value, 0, len(mv))
		}
		for _, m := range mv {
			tmp = append(tmp, regs[m.Src])
		}
		for i, m := range mv {
			regs[m.Dst] = tmp[i]
		}
	}
}

// praise raises exception value v from a prepared site: into the
// precomputed handler (applying the exception edge's phi moves and
// returning the handler pc) or out of the function as rt.Thrown.
func (l *Loader) praise(regs []rt.Value, caught *rt.Value, rs *RaiseSite, v rt.Value) int32 {
	if rs == nil {
		panic(rt.Thrown{Val: v})
	}
	applyMoves(regs, rs.Moves)
	*caught = v
	return rs.Target
}

// pinvoke runs a resolved callee: prepared function body or native
// method.
func (l *Loader) pinvoke(mr *core.MethodRef, fi int32, args []rt.Value) rt.Value {
	if fi >= 0 {
		return l.runPrepared(l.prep.Funcs[fi], args)
	}
	return l.native(mr, args)
}

// pcallProtected is pinvoke under a handler: an uncaught callee
// exception is intercepted instead of unwinding this frame.
func (l *Loader) pcallProtected(mr *core.MethodRef, fi int32, args []rt.Value) (out rt.Value, thrown rt.Value, caught bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		t, ok := r.(rt.Thrown)
		if !ok {
			panic(r)
		}
		thrown, caught = t.Val, true
	}()
	out = l.pinvoke(mr, fi, args)
	return out, thrown, false
}

// pcall executes a PCall/PDispatch instruction. It reports the handler
// pc and true when the callee raised into this site's handler.
func (l *Loader) pcall(regs []rt.Value, caught *rt.Value, in *PreparedInst) (int32, bool) {
	mr := &l.Mod.Methods[in.A]
	args := make([]rt.Value, len(in.Args))
	for i, r := range in.Args {
		args[i] = regs[r]
	}
	fi := in.B
	if in.Op == PDispatch {
		// Polymorphic association through the dispatch-table slot.
		// Host-implemented receivers (strings) bind statically.
		if recv, ok := args[0].R.(*rt.Object); ok && int(mr.VSlot) < len(recv.Class.VTable) {
			mr = &l.Mod.Methods[recv.Class.VTable[mr.VSlot]]
		}
		fi = mr.FuncIdx
	}
	if in.Raise == nil {
		regs[in.Dst] = l.pinvoke(mr, fi, args)
		return 0, false
	}
	out, thrown, wasCaught := l.pcallProtected(mr, fi, args)
	if wasCaught {
		return l.praise(regs, caught, in.Raise, thrown), true
	}
	regs[in.Dst] = out
	return 0, false
}

// runPrepared executes one prepared function body.
func (l *Loader) runPrepared(pf *PFunc, args []rt.Value) rt.Value {
	env := l.Env
	regs := make([]rt.Value, pf.NumRegs)
	var caught rt.Value
	code := pf.Code
	pc := int32(0)
	for {
		in := &code[pc]
		if in.Op < pCtrl {
			env.Step()
		}
		switch in.Op {
		case PConst:
			regs[in.Dst] = in.Val
		case PConstStr:
			// A fresh *rt.Str per execution, like the reference
			// evaluator's OpConst — reference identity (PREq) must not
			// observe prepared-form sharing.
			regs[in.Dst] = rt.RefValue(&rt.Str{S: in.Str})
		case PParam:
			regs[in.Dst] = args[in.A]
		case PCopy:
			regs[in.Dst] = regs[in.A]
		case PPrim:
			regs[in.Dst] = l.evalPrim(in.Prim, regs[in.A], regs[in.B])
		case PXPrim:
			av, bv := regs[in.A], regs[in.B]
			var zero bool
			switch in.Prim {
			case core.PIDiv, core.PIRem:
				zero = bv.Int() == 0
			default: // PLDiv, PLRem
				zero = bv.I == 0
			}
			if zero {
				pc = l.praise(regs, &caught, in.Raise, l.newExc(l.exc.Arith, "/ by zero"))
				continue
			}
			regs[in.Dst] = l.evalPrim(in.Prim, av, bv)
		case PNullCheck:
			v := regs[in.A]
			if v.R == nil {
				pc = l.praise(regs, &caught, in.Raise, l.newExc(l.exc.NPE, "null dereference"))
				continue
			}
			regs[in.Dst] = v
		case PIndexCheck:
			arr := regs[in.A].R.(*rt.Array)
			idx := regs[in.B].Int()
			if idx < 0 || int(idx) >= len(arr.Elems) {
				pc = l.praise(regs, &caught, in.Raise, l.newExc(l.exc.Bounds,
					fmt.Sprintf("index %d out of bounds for length %d", idx, len(arr.Elems))))
				continue
			}
			regs[in.Dst] = rt.IntValue(idx)
		case PUpcast:
			v := regs[in.A]
			if v.R != nil && !l.isInstance(v.R, in.Type) {
				pc = l.praise(regs, &caught, in.Raise, l.newExc(l.exc.Cast,
					"cannot cast to "+l.Mod.Types.Describe(in.Type)))
				continue
			}
			regs[in.Dst] = v
		case PInstanceOf:
			v := regs[in.A]
			regs[in.Dst] = rt.BoolValue(v.R != nil && l.isInstance(v.R, in.Type))
		case PGetField:
			regs[in.Dst] = regs[in.A].R.(*rt.Object).Fields[in.B]
		case PSetField:
			regs[in.A].R.(*rt.Object).Fields[in.B] = regs[in.C]
		case PGetStatic:
			regs[in.Dst] = l.classes[in.Type].Statics[in.B]
		case PSetStatic:
			l.classes[in.Type].Statics[in.B] = regs[in.A]
		case PGetElt:
			arr := regs[in.A].R.(*rt.Array)
			regs[in.Dst] = arr.Elems[regs[in.B].Int()]
		case PSetElt:
			arr := regs[in.A].R.(*rt.Array)
			arr.Elems[regs[in.B].Int()] = regs[in.C]
		case PArrayLen:
			regs[in.Dst] = rt.IntValue(int32(len(regs[in.A].R.(*rt.Array).Elems)))
		case PNew:
			regs[in.Dst] = rt.RefValue(env.NewObject(l.classes[in.Type]))
		case PNewArray:
			n := regs[in.A].Int()
			if n < 0 {
				pc = l.praise(regs, &caught, in.Raise, l.newExc(l.exc.NegSize,
					fmt.Sprintf("%d", n)))
				continue
			}
			regs[in.Dst] = rt.RefValue(env.NewArray(n, int32(in.Type)))
		case PCall, PDispatch:
			if target, jumped := l.pcall(regs, &caught, in); jumped {
				pc = target
				continue
			}
		case PCatch:
			regs[in.Dst] = caught
		case PLoopStep:
			// The step charge above is the whole instruction: one unit
			// of budget per loop iteration, same as the reference
			// evaluator's charge at the top of CWhile/CDoWhile.
		case PJump:
			applyMoves(regs, in.Moves)
			pc = in.Target
			continue
		case PBranchFalse:
			if !regs[in.A].Bool() {
				applyMoves(regs, in.Moves)
				pc = in.Target
				continue
			}
		case PMoves:
			applyMoves(regs, in.Moves)
		case PReturn:
			return rt.Value{}
		case PReturnVal:
			return regs[in.A]
		case PThrow:
			v := regs[in.A]
			if v.R == nil {
				v = l.newExc(l.exc.NPE, "throw of null")
			}
			pc = l.praise(regs, &caught, in.Raise, v)
			continue
		default:
			panic(fmt.Sprintf("interp: unhandled prepared opcode %s", in.Op))
		}
		pc++
	}
}
