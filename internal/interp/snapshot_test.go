package interp_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
)

func compileSrc(t *testing.T, src string) *interp.Snapshot {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	l, err := interp.LoadTrustedDeferred(mod, nil, nil, &rt.Env{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunStaticInit(); err != nil {
		t.Fatalf("static init: %v", err)
	}
	snap, err := l.Snapshot(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Verify(); err != nil {
		t.Fatal(err)
	}
	return snap
}

const snapshotSrc = `
class Warm {
    static int[] table = Warm.build();
    static String banner = Warm.hello();
    static int[] build() {
        int[] t = new int[64];
        for (int i = 0; i < 64; i++) {
            t[i] = i * 3;
        }
        return t;
    }
    static String hello() {
        System.out.println("booting");
        return "ready";
    }
    static void main() {
        Warm.table[0] = Warm.table[0] + 1;
        System.out.println(Warm.banner + " " + Warm.table[0] + " " + Warm.table[63]);
    }
}`

// TestSnapshotReplaysInitObservables: a clone's env starts where a fresh
// post-init session's env would be — init output replayed, init budget
// drain pre-charged, and RunMain continuing from there.
func TestSnapshotReplaysInitObservables(t *testing.T) {
	snap := compileSrc(t, snapshotSrc)
	if snap.InitSteps() <= 0 || snap.InitAllocs() <= 0 {
		t.Fatalf("init drain (%d, %d), want both positive", snap.InitSteps(), snap.InitAllocs())
	}

	var out bytes.Buffer
	env := &rt.Env{Out: &out}
	l, err := snap.NewSession(env)
	if err != nil {
		t.Fatal(err)
	}
	if env.Steps != snap.InitSteps() || env.Allocs != snap.InitAllocs() {
		t.Errorf("clone env pre-charge (%d, %d) != init drain (%d, %d)",
			env.Steps, env.Allocs, snap.InitSteps(), snap.InitAllocs())
	}
	if !strings.HasPrefix(out.String(), "booting\n") {
		t.Errorf("init output not replayed: %q", out.String())
	}
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	// Fresh end-to-end session for comparison.
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": snapshotSrc})
	if err != nil {
		t.Fatal(err)
	}
	var fout bytes.Buffer
	fenv := &rt.Env{Out: &fout}
	fl, err := interp.LoadTrusted(mod, fenv)
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != fout.String() {
		t.Errorf("clone output %q != fresh %q", out.String(), fout.String())
	}
	if env.Steps != fenv.Steps || env.Allocs != fenv.Allocs {
		t.Errorf("clone drain (%d, %d) != fresh (%d, %d)", env.Steps, env.Allocs, fenv.Steps, fenv.Allocs)
	}
	if l.HeapChecksum() != fl.HeapChecksum() {
		t.Error("post-main heaps diverge between clone and fresh session")
	}
}

// TestSnapshotClonesAreIsolated: one clone's main-time mutations must
// not leak into the snapshot or into sibling clones.
func TestSnapshotClonesAreIsolated(t *testing.T) {
	snap := compileSrc(t, snapshotSrc)
	frozen := snap.Checksum()

	run := func() string {
		var out bytes.Buffer
		l, err := snap.NewSession(&rt.Env{Out: &out})
		if err != nil {
			t.Fatal(err)
		}
		if got := l.HeapChecksum(); got != frozen {
			t.Fatalf("pre-main clone heap %#x != frozen %#x", got, frozen)
		}
		if err := l.RunMain(); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := run()
	second := run() // would print table[0]+2 if the first clone's store leaked
	if first != second {
		t.Errorf("sibling clones diverged: %q then %q", first, second)
	}
}

// TestSnapshotPreservesObjectIdentity: identity hashes minted during
// init survive cloning, and fresh allocations in a clone continue the
// id sequence exactly where a fresh session would — System.identity
// semantics cannot distinguish a clone from a fresh run.
func TestSnapshotPreservesObjectIdentity(t *testing.T) {
	src := `
class Node { int v; }
class Main {
    static Node a = new Node();
    static Node b = Main.a;
    static void main() {
        Node c = new Node();
        System.out.println(Main.a == Main.b);
        System.out.println(Main.a == c);
    }
}`
	snap := compileSrc(t, src)
	var out bytes.Buffer
	l, err := snap.NewSession(&rt.Env{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != "true\nfalse\n" {
		t.Errorf("identity semantics diverged in clone: %q", got)
	}
}

// TestSnapshotAdmits pins the budget-admission rule: a snapshot admits
// exactly the budgets under which a fresh session would have survived
// static init (Step panics only when Steps exceeds MaxSteps, so
// equality admits).
func TestSnapshotAdmits(t *testing.T) {
	snap := compileSrc(t, snapshotSrc)
	steps, allocs := snap.InitSteps(), snap.InitAllocs()
	cases := []struct {
		name     string
		ms, ma   int64
		admitted bool
	}{
		{"unlimited", 0, 0, true},
		{"exactly the init drain", steps, allocs, true},
		{"ample", steps * 10, allocs * 10, true},
		{"steps one short", steps - 1, 0, false},
		{"allocs one short", 0, allocs - 1, false},
		{"steps unlimited, allocs short", 0, allocs / 2, false},
	}
	for _, c := range cases {
		if got := snap.Admits(c.ms, c.ma); got != c.admitted {
			t.Errorf("%s: Admits(%d, %d) = %v, want %v", c.name, c.ms, c.ma, got, c.admitted)
		}
	}
}

// TestSnapshotDetachedFromBuilder: the builder session can keep running
// (main mutates its statics) after the snapshot is taken without
// perturbing what clones observe.
func TestSnapshotDetachedFromBuilder(t *testing.T) {
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": snapshotSrc})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	l, err := interp.LoadTrustedDeferred(mod, nil, nil, &rt.Env{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunStaticInit(); err != nil {
		t.Fatal(err)
	}
	snap, err := l.Snapshot(out.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	frozen := snap.Checksum()
	if err := l.RunMain(); err != nil { // mutates the builder's statics
		t.Fatal(err)
	}
	cl, err := snap.NewSession(&rt.Env{Out: &bytes.Buffer{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.HeapChecksum(); got != frozen {
		t.Errorf("builder's post-snapshot main leaked into clones: %#x != %#x", got, frozen)
	}
}

// TestClonerPreservesAliasingAndCycles exercises rt.Cloner directly on
// an aliased, cyclic object graph threaded through statics.
func TestClonerPreservesAliasingAndCycles(t *testing.T) {
	src := `
class Node { Node next; int[] payload; }
class Main {
    static Node ring = Main.mk();
    static int[] shared = Main.ring.payload;
    static Node mk() {
        Node a = new Node();
        Node b = new Node();
        a.next = b;
        b.next = a;
        a.payload = new int[4];
        b.payload = a.payload;
        return a;
    }
    static void main() {
        Main.shared[0] = 9;
        System.out.println(Main.ring.next.payload[0]);
        System.out.println(Main.ring == Main.ring.next.next);
    }
}`
	snap := compileSrc(t, src)
	var out bytes.Buffer
	l, err := snap.NewSession(&rt.Env{Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	// "9" proves shared/payload stayed one array; "true" proves the
	// two-node cycle closed on the cloned pair rather than unrolling.
	if got := out.String(); got != "9\ntrue\n" {
		t.Errorf("aliasing or cycle lost in clone: %q", got)
	}
}

// TestSnapshotBudgetKillsMatchFresh: a clone that exhausts its budget
// mid-main dies at exactly the same point, with the same drain, as a
// fresh session given the same budget.
func TestSnapshotBudgetKillsMatchFresh(t *testing.T) {
	src := `
class Main {
    static int[] warm = new int[128];
    static void main() {
        long s = 0L;
        int i = 0;
        while (i < 1000000000) {
            s = s + (i % 5);
            i = i + 1;
        }
        System.out.println(s);
    }
}`
	snap := compileSrc(t, src)
	budget := snap.InitSteps() + 5000
	if !snap.Admits(budget, 0) {
		t.Fatal("test budget does not admit the snapshot")
	}

	var cout bytes.Buffer
	cenv := &rt.Env{Out: &cout, MaxSteps: budget}
	cl, err := snap.NewSession(cenv)
	if err != nil {
		t.Fatal(err)
	}
	cerr := cl.RunMain()

	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	var fout bytes.Buffer
	fenv := &rt.Env{Out: &fout, MaxSteps: budget}
	fl, err := interp.LoadTrusted(mod, fenv)
	if err != nil {
		t.Fatal(err)
	}
	ferr := fl.RunMain()

	if !errors.Is(cerr, rt.ErrStepLimit) || !errors.Is(ferr, rt.ErrStepLimit) {
		t.Fatalf("expected step kills, got clone %v, fresh %v", cerr, ferr)
	}
	if cenv.Steps != fenv.Steps || cenv.Allocs != fenv.Allocs {
		t.Errorf("kill-point drain diverges: clone (%d, %d), fresh (%d, %d)",
			cenv.Steps, cenv.Allocs, fenv.Steps, fenv.Allocs)
	}
	if cl.HeapChecksum() != fl.HeapChecksum() {
		t.Error("kill-point heaps diverge between clone and fresh session")
	}
}
