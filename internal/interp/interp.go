// Package interp is the SafeTSA code consumer: it loads a SafeTSA module
// (typically freshly decoded from the wire format), builds the runtime
// class metadata, runs static initializers, and executes function bodies
// by walking the Control Structure Tree and evaluating the type-separated
// SSA instructions directly.
package interp

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/lang/sema"
	"safetsa/internal/rt"
)

// Loader holds a loaded module and its runtime metadata.
type Loader struct {
	Mod *core.Module
	Env *rt.Env

	classes map[core.TypeID]*rt.ClassInfo
	exc     rt.ExcClasses
	// prep, when non-nil, switches the session to the prepared register
	// machine: every function body (static initializers included) runs
	// through runPrepared instead of the reference CST walker.
	prep *Prepared
	// comp, when non-nil, switches the session to the closure-threaded
	// compiled engine; it takes precedence over prep.
	comp *Compiled
	// cfree and afree are the compiled engine's per-session free lists
	// for invocation frames and call-argument buffers (see getFrame in
	// compile.go). A Loader is single-session, single-goroutine state, so
	// the lists need no locking.
	cfree []*cframe
	afree [][]rt.Value
	// gate, when non-nil, marks a streaming session: before any
	// function index is executed, gate blocks until that function has
	// been admitted by the streaming decoder (or returns the stream's
	// error, aborting the run). See LoadTrustedStreaming.
	gate func(fi int) error
}

// Load verifies the module and prepares it for execution (class metadata
// and static initializers).
func Load(mod *core.Module, env *rt.Env) (*Loader, error) {
	if err := mod.Verify(core.VerifyOptions{}); err != nil {
		return nil, fmt.Errorf("interp: module rejected by verifier: %w", err)
	}
	return LoadTrusted(mod, env)
}

// LoadTrusted prepares an already-verified module for execution, skipping
// the structural verifier but still running the link checks and the
// static initializers. It is the entry point for loader caches that
// verify a decoded module once and then start many execution sessions
// from it.
//
// Shared-module invariant: the evaluator treats mod as strictly read-only
// — all mutable execution state (SSA value slots, operand stacks, static
// field storage, the heap) lives in the per-session Loader/frame/rt.Env.
// A single *core.Module may therefore back any number of concurrent
// LoadTrusted sessions, provided each session gets its own rt.Env and no
// one mutates the module (e.g. runs opt.Optimize on it) after it is
// shared.
func LoadTrusted(mod *core.Module, env *rt.Env) (*Loader, error) {
	l, err := loadCommon(mod, env)
	if err != nil {
		return nil, err
	}
	if err := l.RunStaticInit(); err != nil {
		return nil, err
	}
	return l, nil
}

// LoadTrustedStreaming prepares a module whose function bodies are
// still arriving (wire.DecodeVerifiedStream). The symbol tables must be
// complete and statically verified — the streaming decoder guarantees
// both — while Mod.Funcs fills in behind the session's back. gate(i)
// must block until function i is admitted, returning nil, or return the
// stream's terminal error; every function invocation passes through it,
// so execution proceeds exactly as far as verified code exists and a
// mid-stream failure aborts the run with the stream's error. The
// session runs on the reference CST engine: the prepared and compiled
// engines need the complete function list at load time, which is the
// opposite of the point.
func LoadTrustedStreaming(mod *core.Module, gate func(fi int) error, env *rt.Env) (*Loader, error) {
	l, err := loadCommon(mod, env)
	if err != nil {
		return nil, err
	}
	l.gate = gate
	if err := l.RunStaticInit(); err != nil {
		return nil, err
	}
	return l, nil
}

// loadCommon performs the engine-independent part of loading: link
// checks and runtime class metadata, but no guest execution.
func loadCommon(mod *core.Module, env *rt.Env) (*Loader, error) {
	// Every host-implemented method must map to a builtin this consumer
	// actually provides; a module referencing an unknown import is
	// rejected at link time.
	for i := range mod.Methods {
		mr := &mod.Methods[i]
		if mr.FuncIdx >= 0 || mr.IsCtor {
			continue
		}
		arity, ok := builtinArity[sema.BuiltinID(mr.Builtin)]
		if !ok {
			return nil, fmt.Errorf("interp: method %s imports unknown host operation %d",
				mr.Name, mr.Builtin)
		}
		have := len(mr.Params)
		if !mr.Static {
			have++
		}
		if have != arity {
			return nil, fmt.Errorf("interp: method %s does not match the host operation's arity",
				mr.Name)
		}
	}
	l := &Loader{Mod: mod, Env: env, classes: make(map[core.TypeID]*rt.ClassInfo)}
	tt := mod.Types

	// Imported class hierarchy.
	mk := func(id core.TypeID, slots int) *rt.ClassInfo {
		t := tt.MustGet(id)
		ci := &rt.ClassInfo{Name: t.Name, NumSlots: slots, TypeID: int32(id)}
		if t.Super != core.NoType {
			ci.Super = l.classes[t.Super]
		}
		l.classes[id] = ci
		return ci
	}
	mk(tt.Object, 0)
	mk(tt.String, 0)
	l.exc.Throwable = mk(tt.Throwable, 1)
	l.exc.Exception = mk(tt.Exception, 1)
	l.exc.NPE = mk(tt.NPE, 1)
	l.exc.Arith = mk(tt.Arith, 1)
	l.exc.Bounds = mk(tt.Bounds, 1)
	l.exc.Cast = mk(tt.Cast, 1)
	l.exc.NegSize = mk(tt.NegSize, 1)

	// User classes (Module.Classes is in superclass-first order).
	for _, cd := range mod.Classes {
		t := tt.MustGet(cd.Type)
		ci := &rt.ClassInfo{
			Name:     t.Name,
			Super:    l.classes[cd.Super],
			NumSlots: int(cd.NumSlots),
			VTable:   cd.VTable,
			TypeID:   int32(cd.Type),
			Statics:  make([]rt.Value, cd.NumStatics),
		}
		if ci.Super == nil {
			return nil, fmt.Errorf("interp: class %s has unknown superclass", t.Name)
		}
		l.classes[cd.Type] = ci
	}

	return l, nil
}

// RunStaticInit executes the static initializers in class order on the
// session's engine. The LoadTrusted* entry points call it internally;
// sessions built with LoadTrustedDeferred (the warm-pool build path)
// call it exactly once themselves, before either RunMain or Snapshot.
func (l *Loader) RunStaticInit() error {
	var err error
	func() {
		defer l.catchTopLevel(&err)
		for _, fi := range l.Mod.StaticInit {
			if fi >= 0 {
				l.call(fi, nil)
			}
		}
	}()
	return err
}

// streamAbort unwinds guest execution when the streaming decoder
// rejects the unit mid-run; catchTopLevel converts it to the stream's
// error.
type streamAbort struct{ err error }

// call invokes function index fi on the session's engine.
func (l *Loader) call(fi int32, args []rt.Value) rt.Value {
	if l.gate != nil {
		if err := l.gate(int(fi)); err != nil {
			panic(streamAbort{err})
		}
	}
	if l.comp != nil {
		return l.runCompiled(l.comp.Funcs[fi], args)
	}
	if l.prep != nil {
		return l.runPrepared(l.prep.Funcs[fi], args)
	}
	return l.callFunc(l.Mod.Funcs[fi], args)
}

// catchTopLevel converts an uncaught TJ exception into a Go error.
func (l *Loader) catchTopLevel(err *error) {
	r := recover()
	switch t := r.(type) {
	case nil:
	case streamAbort:
		*err = t.err
	case rt.Thrown:
		*err = fmt.Errorf("uncaught exception: %s", l.describeExc(t.Val))
	case error:
		if rt.IsExecError(t) {
			*err = t
			return
		}
		panic(r)
	default:
		panic(r)
	}
}

func (l *Loader) describeExc(v rt.Value) string {
	o, ok := v.R.(*rt.Object)
	if !ok {
		return rt.RefString(v.R)
	}
	msg := ""
	if len(o.Fields) > 0 {
		if s, ok := rt.GetStr(o.Fields[0].R); ok {
			msg = ": " + s
		}
	}
	return o.Class.Name + msg
}

// RunMain executes the module entry point.
func (l *Loader) RunMain() error {
	if l.Mod.Entry < 0 {
		return fmt.Errorf("interp: module has no main method")
	}
	if l.gate != nil {
		// Streaming: the entry slot may not be published yet — wait for
		// its admission before inspecting the body.
		if fi := l.Mod.Methods[l.Mod.Entry].FuncIdx; fi >= 0 {
			if err := l.gate(int(fi)); err != nil {
				return err
			}
		}
	}
	f := l.Mod.FuncOf(l.Mod.Entry)
	if f == nil {
		return fmt.Errorf("interp: entry method has no body")
	}
	args := make([]rt.Value, len(f.Params)) // String[] args arrives null
	var err error
	func() {
		defer l.catchTopLevel(&err)
		l.call(l.Mod.Methods[l.Mod.Entry].FuncIdx, args)
	}()
	return err
}

// CallStatic invokes a static method by class and name (for tests and
// examples).
func (l *Loader) CallStatic(class, name string, args ...rt.Value) (rt.Value, error) {
	for _, mr := range l.Mod.Methods {
		owner := l.Mod.Types.MustGet(mr.Owner)
		if mr.Static && owner.Name == class && mr.Name == name && mr.FuncIdx >= 0 {
			var out rt.Value
			var err error
			func() {
				defer l.catchTopLevel(&err)
				out = l.call(mr.FuncIdx, args)
			}()
			return out, err
		}
	}
	return rt.Value{}, fmt.Errorf("interp: no static method %s.%s", class, name)
}

// ---------------------------------------------------------------------
// Frames and control

type ctrl int

const (
	ctrlNext ctrl = iota
	ctrlReturn
	ctrlBreak
	ctrlContinue
)

// tsaThrow transfers control to an exception handler within the same
// function; it never escapes a function body.
type tsaThrow struct {
	val     rt.Value
	edge    int
	handler *core.Block
}

type frame struct {
	f    *core.Func
	vals []rt.Value
	args []rt.Value
	ret  rt.Value
	// prev is the most recently executed block, used to resolve the
	// incoming edge of phi evaluation.
	prev *core.Block
	// enterEdge, when >= 0, overrides edge resolution for the next
	// block (exception-handler entry).
	enterEdge int
	caught    rt.Value
}

func (l *Loader) callFunc(f *core.Func, args []rt.Value) rt.Value {
	fr := &frame{
		f:         f,
		vals:      make([]rt.Value, f.NumValues()+1),
		args:      args,
		enterEdge: -1,
	}
	l.execNode(fr, f.Body)
	return fr.ret
}

func (fr *frame) val(id core.ValueID) rt.Value {
	return fr.vals[id]
}

func (l *Loader) execNode(fr *frame, n *core.CSTNode) ctrl {
	if n == nil {
		return ctrlNext
	}
	switch n.Kind {
	case core.CSeq:
		for _, k := range n.Kids {
			if c := l.execNode(fr, k); c != ctrlNext {
				return c
			}
		}
		return ctrlNext
	case core.CBlock:
		l.execBlock(fr, n.Block)
		return ctrlNext
	case core.CIf:
		if fr.val(n.Cond).Bool() {
			return l.execNode(fr, n.Kids[0])
		}
		if len(n.Kids) > 1 {
			return l.execNode(fr, n.Kids[1])
		}
		return ctrlNext
	case core.CWhile:
		for {
			// Charge one step per iteration so a loop whose blocks
			// carry no instructions (e.g. `while (true) { }` with a
			// hoisted condition) still consumes step budget and stays
			// interruptible.
			l.Env.Step()
			if c := l.execNode(fr, n.Kids[0]); c != ctrlNext {
				return c
			}
			if !fr.val(n.Cond).Bool() {
				return ctrlNext
			}
			switch c := l.execNode(fr, n.Kids[1]); c {
			case ctrlReturn:
				return ctrlReturn
			case ctrlBreak:
				return ctrlNext
			}
		}
	case core.CDoWhile:
		for {
			l.Env.Step()
			switch c := l.execNode(fr, n.Kids[0]); c {
			case ctrlReturn:
				return ctrlReturn
			case ctrlBreak:
				return ctrlNext
			}
			if c := l.execNode(fr, n.Kids[1]); c != ctrlNext {
				return c
			}
			if !fr.val(n.Cond).Bool() {
				return ctrlNext
			}
		}
	case core.CReturn:
		if n.Val != core.NoValue {
			fr.ret = fr.val(n.Val)
		}
		return ctrlReturn
	case core.CBreak:
		return ctrlBreak
	case core.CContinue:
		return ctrlContinue
	case core.CThrow:
		v := fr.val(n.Val)
		if v.R == nil {
			l.throwTo(fr.f.ThrowHandler[n], fr.f.ThrowEdge[n],
				l.newExc(l.exc.NPE, "throw of null"))
		}
		l.throwTo(fr.f.ThrowHandler[n], fr.f.ThrowEdge[n], v)
		return ctrlNext // unreachable
	case core.CTry:
		caught, edge, c, ok := l.runProtected(fr, n)
		if !ok {
			return c
		}
		fr.caught = caught
		fr.enterEdge = edge
		return l.execNode(fr, n.Kids[1])
	}
	panic(fmt.Sprintf("interp: unhandled CST node %v", n.Kind))
}

// runProtected executes the try body, intercepting transfers to this
// node's handler. ok reports whether the handler must run.
func (l *Loader) runProtected(fr *frame, n *core.CSTNode) (caught rt.Value, edge int, c ctrl, ok bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		t, isTsa := r.(tsaThrow)
		if !isTsa || t.handler != n.Handler {
			panic(r)
		}
		caught, edge, ok = t.val, t.edge, true
	}()
	c = l.execNode(fr, n.Kids[0])
	return caught, edge, c, false
}

// throwTo raises an exception either into a local handler or out of the
// function.
func (l *Loader) throwTo(handler *core.Block, edge int, v rt.Value) {
	if handler != nil {
		panic(tsaThrow{val: v, edge: edge, handler: handler})
	}
	panic(rt.Thrown{Val: v})
}

// raise raises from an instruction site.
func (l *Loader) raise(fr *frame, in *core.Instr, v rt.Value) {
	l.throwTo(fr.f.HandlerOf[in], fr.f.ExcEdge[in], v)
}

func (l *Loader) newExc(c *rt.ClassInfo, msg string) rt.Value {
	o := l.Env.NewObject(c)
	o.Fields[0] = rt.RefValue(&rt.Str{S: msg})
	return rt.RefValue(o)
}

// execBlock evaluates a block: phis in parallel against the incoming
// edge, then the straightline code.
func (l *Loader) execBlock(fr *frame, b *core.Block) {
	if len(b.Phis) > 0 {
		edge := fr.enterEdge
		if edge < 0 {
			edge = -1
			for i, p := range b.Preds {
				if p.From == fr.prev && p.Site == nil {
					edge = i
					break
				}
			}
			if edge < 0 {
				panic(fmt.Sprintf("interp: %s: no edge from block %d into block %d",
					fr.f.Name, fr.prev.Index, b.Index))
			}
		}
		// Parallel phi semantics: read all operands, then write.
		tmp := make([]rt.Value, len(b.Phis))
		for i, phi := range b.Phis {
			tmp[i] = fr.val(phi.Args[edge])
		}
		for i, phi := range b.Phis {
			fr.vals[phi.ID] = tmp[i]
		}
	}
	fr.enterEdge = -1
	for _, in := range b.Code {
		l.Env.Step()
		l.execInstr(fr, in)
	}
	fr.prev = b
}

// builtinArity lists the host operations this consumer implements as
// imported methods, with their total argument count (receiver included).
// Math operations are absent: they travel as primitives, not methods.
var builtinArity = map[sema.BuiltinID]int{
	sema.BStrLength:     1,
	sema.BStrCharAt:     2,
	sema.BStrSubstring:  3,
	sema.BStrEquals:     2,
	sema.BStrCompareTo:  2,
	sema.BStrIndexOf:    2,
	sema.BStrHashCode:   1,
	sema.BObjHashCode:   1,
	sema.BObjEquals:     2,
	sema.BObjToString:   1,
	sema.BExcGetMessage: 1,
	sema.BPrintlnString: 1,
	sema.BPrintlnInt:    1,
	sema.BPrintlnLong:   1,
	sema.BPrintlnDouble: 1,
	sema.BPrintlnBool:   1,
	sema.BPrintlnChar:   1,
	sema.BPrintlnEmpty:  0,
	sema.BPrintString:   1,
	sema.BPrintInt:      1,
	sema.BPrintLong:     1,
	sema.BPrintDouble:   1,
	sema.BPrintBool:     1,
	sema.BPrintChar:     1,
}
