package interp

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// This file is the load-time half of the prepared execution engine: a
// one-shot compilation of a decoded, verified module into a dense
// register-machine form. The paper observes that SafeTSA's
// dominator-relative (l, r) operand pairs can be mapped onto a flat
// virtual-register file while decoding, so the consumer never pays
// tree-walking cost at execution time; our wire decoder already resolves
// (l, r) pairs to function-wide SSA ValueIDs, and Prepare finishes the
// job by flattening the Control Structure Tree into straight-line code
// with explicit jumps, resolving every phi into edge-specific parallel
// register moves, and precomputing every exception edge into a (target
// pc, moves) pair.
//
// Slot-assignment invariant: the register of SSA value v is exactly
// int32(v). The reference evaluator's frame stores value v at
// vals[v] (a slice of NumValues()+1), so the prepared register file is
// the same array layout — slot 0 doubles as a scratch register that
// absorbs the results of void instructions, which lets the evaluator
// write regs[in.Dst] unconditionally instead of branching on "has
// result".
//
// Prepare runs strictly after the verifier on an immutable module and
// performs no re-verification; it does, however, bounds-check every
// table index it embeds into the prepared form (operands, phi inputs,
// fields, methods, types), returning an error — never panicking — on a
// reference that only a corrupted or hand-built module could contain.

// POp is a prepared-form opcode. Ordering is semantic: every opcode
// below pCtrl consumes one step of rt.Env budget when executed (they
// correspond 1:1 to reference-evaluator straight-line instructions,
// plus the per-iteration loop charge), while opcodes above pCtrl are
// pure control/data-movement pseudo-instructions that the reference
// evaluator performs for free during its CST walk.
type POp uint8

const (
	// Stepping opcodes (one rt.Env.Step each).
	PConst POp = iota
	PConstStr
	PParam
	PCopy
	PPrim
	PXPrim
	PNullCheck
	PIndexCheck
	PUpcast
	PInstanceOf
	PGetField
	PSetField
	PGetStatic
	PSetStatic
	PGetElt
	PSetElt
	PArrayLen
	PNew
	PNewArray
	PCall
	PDispatch
	PCatch
	PLoopStep

	pCtrl // sentinel: opcodes past this point do not step

	PJump
	PBranchFalse
	PMoves
	PReturn
	PReturnVal
	PThrow
)

var pOpNames = [...]string{
	PConst: "const", PConstStr: "conststr", PParam: "param", PCopy: "copy",
	PPrim: "prim", PXPrim: "xprim", PNullCheck: "nullcheck",
	PIndexCheck: "indexcheck", PUpcast: "upcast", PInstanceOf: "instanceof",
	PGetField: "getfield", PSetField: "setfield", PGetStatic: "getstatic",
	PSetStatic: "setstatic", PGetElt: "getelt", PSetElt: "setelt",
	PArrayLen: "arraylen", PNew: "new", PNewArray: "newarray",
	PCall: "call", PDispatch: "dispatch", PCatch: "catch",
	PLoopStep: "loopstep", pCtrl: "ctrl",
	PJump: "jump", PBranchFalse: "branchfalse", PMoves: "moves",
	PReturn: "return", PReturnVal: "returnval", PThrow: "throw",
}

func (op POp) String() string {
	if int(op) < len(pOpNames) && pOpNames[op] != "" {
		return pOpNames[op]
	}
	return fmt.Sprintf("pop(%d)", uint8(op))
}

// Move is one register copy of a parallel phi-move set.
type Move struct{ Dst, Src int32 }

// RaiseSite is the precomputed exception edge of a potentially-throwing
// prepared instruction: on a raise, Moves (the handler block's phi
// inputs for this edge) are applied in parallel and control transfers
// to Target. A nil *RaiseSite means the exception leaves the function
// as rt.Thrown.
type RaiseSite struct {
	Target int32
	Moves  []Move
}

// PreparedInst is one prepared instruction. Field use by opcode:
//
//	PConst       Dst ← Val
//	PConstStr    Dst ← fresh *rt.Str of Str (fresh per execution, so
//	             reference identity matches the reference evaluator)
//	PParam       Dst ← args[A]
//	PCopy        Dst ← reg A (OpDowncast: a stepped plane move)
//	PPrim        Dst ← Prim(reg A, reg B)
//	PXPrim       like PPrim but Prim ∈ {idiv,irem,ldiv,lrem}; zero
//	             divisor raises ArithmeticException via Raise
//	PNullCheck   Dst ← reg A after null test (Raise: NPE)
//	PIndexCheck  Dst ← reg B after bounds test against array reg A
//	PUpcast      Dst ← reg A after checked cast to Type (Raise: CCE)
//	PInstanceOf  Dst ← reg A instanceof Type
//	PGetField    Dst ← (reg A).fields[B]
//	PSetField    (reg A).fields[B] ← reg C
//	PGetStatic   Dst ← statics(Type)[B]
//	PSetStatic   statics(Type)[B] ← reg A
//	PGetElt      Dst ← (reg A)[reg B]
//	PSetElt      (reg A)[reg B] ← reg C
//	PArrayLen    Dst ← len(reg A)
//	PNew         Dst ← new instance of Type
//	PNewArray    Dst ← new array of Type, length reg A (Raise: NegSize)
//	PCall        Dst ← call method A (func index B, or native when B<0)
//	             with Args; Raise catches a callee rt.Thrown
//	PDispatch    like PCall but through the dispatch-table slot of
//	             method A
//	PCatch       Dst ← current caught exception
//	PLoopStep    charge one step (loop-iteration budget)
//	PJump        apply Moves, pc ← Target
//	PBranchFalse if reg A is false: apply Moves, pc ← Target
//	PMoves       apply Moves (phi entry on a fallthrough edge)
//	PReturn      return void
//	PReturnVal   return reg A
//	PThrow       raise reg A via Raise (null raises NPE on the same
//	             edge); nil Raise leaves the function
type PreparedInst struct {
	Op      POp
	Prim    core.PrimOp
	Dst     int32
	A, B, C int32
	Type    core.TypeID
	Target  int32
	Val     rt.Value
	Str     string
	Args    []int32
	Moves   []Move
	Raise   *RaiseSite
}

// PFunc is one prepared function body.
type PFunc struct {
	Name string
	// NumRegs is NumValues()+1: slot v holds SSA value v, slot 0 is
	// the void-result scratch register.
	NumRegs int32
	Code    []PreparedInst
}

// Prepared is the register-machine form of a module. Like the module it
// was prepared from it is immutable after Prepare returns and may be
// shared by any number of concurrent execution sessions.
type Prepared struct {
	Funcs []*PFunc // parallel to Module.Funcs
	// Insts is the total prepared instruction count (for diagnostics
	// and cache accounting).
	Insts int
}

// Prepare compiles a verified module into its prepared form. It never
// executes guest code and never panics: a module whose references do
// not resolve (unreachable after the verifier, but reachable from
// hand-built or corrupted modules) yields an error.
func Prepare(mod *core.Module) (*Prepared, error) {
	p := &Prepared{Funcs: make([]*PFunc, len(mod.Funcs))}
	for i, f := range mod.Funcs {
		pf, err := prepareFunc(mod, f)
		if err != nil {
			return nil, fmt.Errorf("interp: prepare %s: %w", f.Name, err)
		}
		p.Funcs[i] = pf
		p.Insts += len(pf.Code)
	}
	return p, nil
}

// ---------------------------------------------------------------------
// The flattening compiler.

// pendingJump is a forward reference: an emitted PJump/PBranchFalse
// whose Target (and entry Moves, which depend on the destination
// block's phis) are patched when the destination is reached. src is the
// most recently executed basic block on that path — the static image of
// the reference evaluator's fr.prev — which selects the phi edge.
type pendingJump struct {
	at  int32
	src *core.Block
}

// flow describes how control reaches the next emitted instruction:
// an optional open fallthrough path (with its own src block) plus any
// number of pending jumps converging here. moved marks a fallthrough
// whose destination-block phi moves were already applied (loop headers
// and handler entries, whose entry moves are emitted at the transfer
// sources).
type flow struct {
	open  bool
	src   *core.Block
	moved bool
	jumps []pendingJump
}

func (fl *flow) dead() bool { return !fl.open && len(fl.jumps) == 0 }

// loopCtx collects the exits of the innermost loop being compiled.
type loopCtx struct {
	breaks    []pendingJump
	continues []pendingJump
}

type fcomp struct {
	mod  *core.Module
	f    *core.Func
	code []PreparedInst
	fl   flow
	loop []*loopCtx

	// raiseFix defers exception-edge resolution until every handler's
	// pc is known (handlers compile after their protected bodies, and
	// outer handlers after inner ones).
	raiseFix []raiseFixup
	handlers map[*core.Block]int32
}

type raiseFixup struct {
	at      int // instruction index whose Raise to fill
	handler *core.Block
	edge    int
}

func prepareFunc(mod *core.Module, f *core.Func) (*PFunc, error) {
	c := &fcomp{
		mod:      mod,
		f:        f,
		handlers: make(map[*core.Block]int32),
		fl:       flow{open: true},
	}
	if err := c.node(f.Body); err != nil {
		return nil, err
	}
	// Fall off the end of the body: a void return. Remaining pending
	// jumps (e.g. a try body exiting past its handler at the end of the
	// function) land here too.
	c.patchTo(int32(len(c.code)), nil)
	c.emit(PreparedInst{Op: PReturn})
	for _, fix := range c.raiseFix {
		target, ok := c.handlers[fix.handler]
		if !ok {
			return nil, fmt.Errorf("exception edge into uncompiled handler block %d", fix.handler.Index)
		}
		mv, err := c.edgeMoves(fix.handler, fix.edge)
		if err != nil {
			return nil, err
		}
		c.code[fix.at].Raise = &RaiseSite{Target: target, Moves: mv}
	}
	return &PFunc{
		Name:    f.Name,
		NumRegs: int32(f.NumValues() + 1),
		Code:    c.code,
	}, nil
}

func (c *fcomp) emit(in PreparedInst) int {
	c.code = append(c.code, in)
	return len(c.code) - 1
}

func (c *fcomp) pc() int32 { return int32(len(c.code)) }

// reg validates an operand ValueID and returns its register.
func (c *fcomp) reg(id core.ValueID) (int32, error) {
	if id < 0 || int(id) > c.f.NumValues() {
		return 0, fmt.Errorf("value v%d out of range (function defines %d values)",
			id, c.f.NumValues())
	}
	return int32(id), nil
}

// dst returns the result register of an instruction: its SSA id, or the
// scratch register 0 for void results.
func dst(in *core.Instr) int32 { return int32(in.ID) }

// edgeMoves builds the parallel phi moves for entering block b along
// predecessor edge k.
func (c *fcomp) edgeMoves(b *core.Block, k int) ([]Move, error) {
	if len(b.Phis) == 0 {
		return nil, nil
	}
	if k < 0 || k >= len(b.Preds) {
		return nil, fmt.Errorf("edge %d out of range for block %d (%d predecessors)",
			k, b.Index, len(b.Preds))
	}
	mv := make([]Move, len(b.Phis))
	for i, phi := range b.Phis {
		if len(phi.Args) != len(b.Preds) {
			return nil, fmt.Errorf("phi v%d of block %d has %d inputs for %d edges",
				phi.ID, b.Index, len(phi.Args), len(b.Preds))
		}
		src, err := c.reg(phi.Args[k])
		if err != nil {
			return nil, err
		}
		d, err := c.reg(phi.ID)
		if err != nil {
			return nil, err
		}
		mv[i] = Move{Dst: d, Src: src}
	}
	return mv, nil
}

// normalEdge finds the index of the normal (non-exception) predecessor
// edge from block `from` into b — the static counterpart of the
// reference evaluator's fr.prev scan.
func (c *fcomp) normalEdge(b, from *core.Block) (int, error) {
	for i, p := range b.Preds {
		if p.From == from && p.Site == nil {
			return i, nil
		}
	}
	fromIdx := -1
	if from != nil {
		fromIdx = from.Index
	}
	return 0, fmt.Errorf("no edge from block %d into block %d", fromIdx, b.Index)
}

// patchTo resolves every pending jump of the current flow to target
// with the given moves (nil when the destination has no phis or when
// the destination makes the source block irrelevant, e.g. a return).
func (c *fcomp) patchTo(target int32, moves []Move) {
	for _, j := range c.fl.jumps {
		c.code[j.at].Target = target
		c.code[j.at].Moves = moves
	}
	c.fl.jumps = nil
}

// collapse funnels all live paths into the current pc for a decision
// point (an if or loop condition) that cannot apply per-path phi moves.
// It returns the unique source block of the surviving path. The SafeTSA
// builder always materializes a merge block before reusing control
// (the current-block invariant of the CST), so distinct sources here
// mean a module shape the builder cannot emit; rejecting it keeps the
// compiler sound without path duplication.
func (c *fcomp) collapse() (*core.Block, error) {
	if c.fl.dead() {
		return nil, nil
	}
	var src *core.Block
	have := false
	if c.fl.open {
		src, have = c.fl.src, true
	}
	for _, j := range c.fl.jumps {
		if !have {
			src, have = j.src, true
			continue
		}
		if j.src != src {
			return nil, fmt.Errorf("ambiguous predecessor at decision point (blocks %d and %d)",
				blockIdx(src), blockIdx(j.src))
		}
	}
	c.patchTo(c.pc(), nil)
	c.fl = flow{open: true, src: src}
	return src, nil
}

func blockIdx(b *core.Block) int {
	if b == nil {
		return -1
	}
	return b.Index
}

// enterLoop emits the loop-entry phi moves of header h for every live
// path — inline for the open fallthrough, folded into each pending
// jump — and returns with the flow marked moved, ready for the header
// block itself. The entry moves run before the loop's per-iteration
// step charge; the reference evaluator charges the step first, but no
// observable action separates the two, so budget kills land on the
// same step either way.
func (c *fcomp) enterLoop(h *core.Block) error {
	if c.fl.open {
		e, err := c.normalEdge(h, c.fl.src)
		if err != nil {
			return err
		}
		mv, err := c.edgeMoves(h, e)
		if err != nil {
			return err
		}
		if len(mv) > 0 {
			c.emit(PreparedInst{Op: PMoves, Moves: mv})
		}
	}
	loopPC := c.pc()
	for _, j := range c.fl.jumps {
		e, err := c.normalEdge(h, j.src)
		if err != nil {
			return err
		}
		mv, err := c.edgeMoves(h, e)
		if err != nil {
			return err
		}
		c.code[j.at].Target = loopPC
		c.code[j.at].Moves = mv
	}
	c.fl = flow{open: true, moved: true}
	return nil
}

// backedge patches one loop exit (the open fallthrough or a pending
// jump) into a jump back to loopPC with the phi moves of header h.
func (c *fcomp) closeLoop(h *core.Block, loopPC int32, jumps []pendingJump) error {
	if c.fl.open {
		e, err := c.normalEdge(h, c.fl.src)
		if err != nil {
			return err
		}
		mv, err := c.edgeMoves(h, e)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PJump, Target: loopPC, Moves: mv})
	}
	for _, j := range append(c.fl.jumps, jumps...) {
		e, err := c.normalEdge(h, j.src)
		if err != nil {
			return err
		}
		mv, err := c.edgeMoves(h, e)
		if err != nil {
			return err
		}
		c.code[j.at].Target = loopPC
		c.code[j.at].Moves = mv
	}
	c.fl.jumps = nil
	c.fl.open = false
	return nil
}

// divert turns the current flow into pending jumps (emitting a PJump
// for the open path) and returns them, leaving the flow dead. Break,
// continue, and the try body's exit over its handler all route through
// here, each jump keeping its own source block for later phi
// resolution.
func (c *fcomp) divert() []pendingJump {
	jumps := c.fl.jumps
	if c.fl.open {
		at := c.emit(PreparedInst{Op: PJump})
		jumps = append(jumps, pendingJump{at: int32(at), src: c.fl.src})
	}
	c.fl = flow{}
	return jumps
}

func (c *fcomp) node(n *core.CSTNode) error {
	if n == nil {
		return nil
	}
	switch n.Kind {
	case core.CSeq:
		for _, k := range n.Kids {
			if err := c.node(k); err != nil {
				return err
			}
		}
		return nil

	case core.CBlock:
		return c.block(n.Block)

	case core.CIf:
		src, err := c.collapse()
		if err != nil {
			return err
		}
		cond, err := c.reg(n.Cond)
		if err != nil {
			return err
		}
		br := c.emit(PreparedInst{Op: PBranchFalse, A: cond})
		c.fl = flow{open: true, src: src}
		if err := c.node(n.Kids[0]); err != nil {
			return err
		}
		if len(n.Kids) > 1 && n.Kids[1] != nil {
			thenExit := c.divert()
			c.fl = flow{jumps: []pendingJump{{at: int32(br), src: src}}}
			if err := c.node(n.Kids[1]); err != nil {
				return err
			}
			c.fl.jumps = append(c.fl.jumps, thenExit...)
			return nil
		}
		c.fl.jumps = append(c.fl.jumps, pendingJump{at: int32(br), src: src})
		return nil

	case core.CWhile:
		if err := c.enterLoop(n.Block); err != nil {
			return err
		}
		loopPC := c.pc()
		c.emit(PreparedInst{Op: PLoopStep})
		if err := c.node(n.Kids[0]); err != nil {
			return err
		}
		condSrc, err := c.collapse()
		if err != nil {
			return err
		}
		cond, err := c.reg(n.Cond)
		if err != nil {
			return err
		}
		exit := c.emit(PreparedInst{Op: PBranchFalse, A: cond})
		lc := &loopCtx{}
		c.loop = append(c.loop, lc)
		c.fl = flow{open: true, src: condSrc}
		if err := c.node(n.Kids[1]); err != nil {
			return err
		}
		c.loop = c.loop[:len(c.loop)-1]
		if err := c.closeLoop(n.Block, loopPC, lc.continues); err != nil {
			return err
		}
		c.fl = flow{jumps: append(lc.breaks, pendingJump{at: int32(exit), src: condSrc})}
		return nil

	case core.CDoWhile:
		if err := c.enterLoop(n.Block); err != nil {
			return err
		}
		loopPC := c.pc()
		c.emit(PreparedInst{Op: PLoopStep})
		lc := &loopCtx{}
		c.loop = append(c.loop, lc)
		if err := c.node(n.Kids[0]); err != nil {
			return err
		}
		c.loop = c.loop[:len(c.loop)-1]
		// A continue in the body falls through to the latch sequence,
		// which resolves each path's phi moves at its first block.
		c.fl.jumps = append(c.fl.jumps, lc.continues...)
		if err := c.node(n.Kids[1]); err != nil {
			return err
		}
		condSrc, err := c.collapse()
		if err != nil {
			return err
		}
		cond, err := c.reg(n.Cond)
		if err != nil {
			return err
		}
		exit := c.emit(PreparedInst{Op: PBranchFalse, A: cond})
		if err := c.closeLoop(n.Block, loopPC, nil); err != nil {
			return err
		}
		c.fl = flow{jumps: append(lc.breaks, pendingJump{at: int32(exit), src: condSrc})}
		return nil

	case core.CReturn:
		c.patchTo(c.pc(), nil)
		if n.Val != core.NoValue {
			r, err := c.reg(n.Val)
			if err != nil {
				return err
			}
			c.emit(PreparedInst{Op: PReturnVal, A: r})
		} else {
			c.emit(PreparedInst{Op: PReturn})
		}
		c.fl = flow{}
		return nil

	case core.CBreak:
		if len(c.loop) == 0 {
			return fmt.Errorf("break outside a loop")
		}
		lc := c.loop[len(c.loop)-1]
		lc.breaks = append(lc.breaks, c.divert()...)
		return nil

	case core.CContinue:
		if len(c.loop) == 0 {
			return fmt.Errorf("continue outside a loop")
		}
		lc := c.loop[len(c.loop)-1]
		lc.continues = append(lc.continues, c.divert()...)
		return nil

	case core.CThrow:
		c.patchTo(c.pc(), nil)
		r, err := c.reg(n.Val)
		if err != nil {
			return err
		}
		at := c.emit(PreparedInst{Op: PThrow, A: r})
		if h := c.f.ThrowHandler[n]; h != nil {
			c.raiseFix = append(c.raiseFix, raiseFixup{at: at, handler: h, edge: c.f.ThrowEdge[n]})
		}
		c.fl = flow{}
		return nil

	case core.CTry:
		if err := c.node(n.Kids[0]); err != nil {
			return err
		}
		after := c.divert()
		if n.Handler == nil {
			return fmt.Errorf("try without a handler block")
		}
		// The handler entry is reached only through raises, which apply
		// the exception-edge phi moves before transferring here.
		c.handlers[n.Handler] = c.pc()
		c.fl = flow{open: true, moved: true}
		if err := c.node(n.Kids[1]); err != nil {
			return err
		}
		c.fl.jumps = append(c.fl.jumps, after...)
		return nil
	}
	return fmt.Errorf("unhandled CST node %v", n.Kind)
}

// block compiles one basic block: entry phi moves for every incoming
// path, then the straight-line code.
func (c *fcomp) block(b *core.Block) error {
	if c.fl.open && !c.fl.moved && len(b.Phis) > 0 {
		e, err := c.normalEdge(b, c.fl.src)
		if err != nil {
			return err
		}
		mv, err := c.edgeMoves(b, e)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PMoves, Moves: mv})
	}
	entry := c.pc()
	for _, j := range c.fl.jumps {
		mv := []Move(nil)
		if len(b.Phis) > 0 {
			e, err := c.normalEdge(b, j.src)
			if err != nil {
				return err
			}
			if mv, err = c.edgeMoves(b, e); err != nil {
				return err
			}
		}
		c.code[j.at].Target = entry
		c.code[j.at].Moves = mv
	}
	for _, in := range b.Code {
		if err := c.instr(in); err != nil {
			return fmt.Errorf("block %d, %s v%d: %w", b.Index, in.Op, in.ID, err)
		}
	}
	c.fl = flow{open: true, src: b}
	return nil
}

// args validates and converts instruction operands to registers.
func (c *fcomp) argRegs(in *core.Instr, want int) ([]int32, error) {
	if len(in.Args) != want {
		return nil, fmt.Errorf("%d operands, want %d", len(in.Args), want)
	}
	out := make([]int32, want)
	for i, id := range in.Args {
		r, err := c.reg(id)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (c *fcomp) typeArg(id core.TypeID) (core.TypeID, error) {
	if c.mod.Types.Get(id) == nil {
		return 0, fmt.Errorf("type id %d out of range", id)
	}
	return id, nil
}

// site registers the exception edge of a potentially-throwing
// instruction for post-compilation fixup; instructions outside any try
// region keep a nil Raise and let the exception leave the function.
func (c *fcomp) site(at int, in *core.Instr) {
	if h := c.f.HandlerOf[in]; h != nil {
		c.raiseFix = append(c.raiseFix, raiseFixup{at: at, handler: h, edge: c.f.ExcEdge[in]})
	}
}

func (c *fcomp) instr(in *core.Instr) error {
	switch in.Op {
	case core.OpParam:
		c.emit(PreparedInst{Op: PParam, Dst: dst(in), A: in.Aux})

	case core.OpConst:
		switch in.Const.Kind {
		case core.KInt, core.KLong, core.KChar, core.KBool:
			c.emit(PreparedInst{Op: PConst, Dst: dst(in), Val: rt.Value{I: in.Const.I}})
		case core.KDouble:
			c.emit(PreparedInst{Op: PConst, Dst: dst(in), Val: rt.Value{D: in.Const.D}})
		case core.KString:
			c.emit(PreparedInst{Op: PConstStr, Dst: dst(in), Str: in.Const.S})
		case core.KNull:
			c.emit(PreparedInst{Op: PConst, Dst: dst(in)})
		default:
			return fmt.Errorf("bad constant kind %d", in.Const.Kind)
		}

	case core.OpPrim, core.OpXPrim:
		if !in.Prim.Valid() {
			return fmt.Errorf("unknown primitive %d", uint8(in.Prim))
		}
		n := len(in.Prim.Sig().Params)
		a, err := c.argRegs(in, n)
		if err != nil {
			return err
		}
		p := PreparedInst{Op: PPrim, Prim: in.Prim, Dst: dst(in), A: a[0]}
		if n > 1 {
			p.B = a[1]
		}
		switch in.Prim {
		case core.PIDiv, core.PIRem, core.PLDiv, core.PLRem:
			p.Op = PXPrim
			at := c.emit(p)
			c.site(at, in)
			return nil
		}
		c.emit(p)

	case core.OpNullCheck:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		at := c.emit(PreparedInst{Op: PNullCheck, Dst: dst(in), A: a[0]})
		c.site(at, in)

	case core.OpIndexCheck:
		a, err := c.argRegs(in, 2)
		if err != nil {
			return err
		}
		at := c.emit(PreparedInst{Op: PIndexCheck, Dst: dst(in), A: a[0], B: a[1]})
		c.site(at, in)

	case core.OpUpcast:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		t, err := c.typeArg(in.TypeArg)
		if err != nil {
			return err
		}
		at := c.emit(PreparedInst{Op: PUpcast, Dst: dst(in), A: a[0], Type: t})
		c.site(at, in)

	case core.OpDowncast:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PCopy, Dst: dst(in), A: a[0]})

	case core.OpInstanceOf:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		t, err := c.typeArg(in.TypeArg)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PInstanceOf, Dst: dst(in), A: a[0], Type: t})

	case core.OpGetField, core.OpSetField:
		if in.Field < 0 || int(in.Field) >= len(c.mod.Fields) {
			return fmt.Errorf("field index %d out of range", in.Field)
		}
		fld := c.mod.Fields[in.Field]
		if fld.Static {
			if in.Op == core.OpGetField {
				c.emit(PreparedInst{Op: PGetStatic, Dst: dst(in), Type: fld.Owner, B: fld.Slot})
				return nil
			}
			a, err := c.argRegs(in, 1)
			if err != nil {
				return err
			}
			c.emit(PreparedInst{Op: PSetStatic, Type: fld.Owner, B: fld.Slot, A: a[0]})
			return nil
		}
		if in.Op == core.OpGetField {
			a, err := c.argRegs(in, 1)
			if err != nil {
				return err
			}
			c.emit(PreparedInst{Op: PGetField, Dst: dst(in), A: a[0], B: fld.Slot})
			return nil
		}
		a, err := c.argRegs(in, 2)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PSetField, A: a[0], B: fld.Slot, C: a[1]})

	case core.OpGetElt:
		a, err := c.argRegs(in, 2)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PGetElt, Dst: dst(in), A: a[0], B: a[1]})

	case core.OpSetElt:
		a, err := c.argRegs(in, 3)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PSetElt, A: a[0], B: a[1], C: a[2]})

	case core.OpArrayLen:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PArrayLen, Dst: dst(in), A: a[0]})

	case core.OpNew:
		t, err := c.typeArg(in.TypeArg)
		if err != nil {
			return err
		}
		c.emit(PreparedInst{Op: PNew, Dst: dst(in), Type: t})

	case core.OpNewArray:
		a, err := c.argRegs(in, 1)
		if err != nil {
			return err
		}
		t, err := c.typeArg(in.TypeArg)
		if err != nil {
			return err
		}
		at := c.emit(PreparedInst{Op: PNewArray, Dst: dst(in), A: a[0], Type: t})
		c.site(at, in)

	case core.OpXCall, core.OpXDispatch:
		if in.Method < 0 || int(in.Method) >= len(c.mod.Methods) {
			return fmt.Errorf("method index %d out of range", in.Method)
		}
		args := make([]int32, len(in.Args))
		for i, id := range in.Args {
			r, err := c.reg(id)
			if err != nil {
				return err
			}
			args[i] = r
		}
		mr := &c.mod.Methods[in.Method]
		p := PreparedInst{Dst: dst(in), A: in.Method, Args: args}
		if in.Op == core.OpXDispatch {
			p.Op = PDispatch
		} else {
			p.Op = PCall
			p.B = mr.FuncIdx
			if mr.FuncIdx >= 0 && int(mr.FuncIdx) >= len(c.mod.Funcs) {
				return fmt.Errorf("function index %d out of range", mr.FuncIdx)
			}
		}
		at := c.emit(p)
		c.site(at, in)

	case core.OpCatch:
		c.emit(PreparedInst{Op: PCatch, Dst: dst(in)})

	default:
		// OpPhi lives in the phi section, OpMem0 only inside producer
		// optimization; neither reaches a verified consumer module.
		return fmt.Errorf("opcode %s is not executable", in.Op)
	}
	return nil
}
