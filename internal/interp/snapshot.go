package interp

import (
	"bytes"
	"fmt"
	"sort"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// This file is the warm-session-pool substrate: static initialization of
// a unit runs once per (module, engine), its post-init state is frozen
// into a Snapshot, and subsequent sessions clone the snapshot instead of
// re-running the initializers. The soundness contract is byte-exactness:
// a session served from a clone must be indistinguishable — printed
// output, error text, kill reason, step/alloc budget drain, object
// identity hashes, and the deterministic heap checksum — from a fresh
// session that ran static init itself. The pieces that make that hold:
//
//   - rt.Cloner preserves aliasing, cycles, and object ids, and charges
//     nothing; NewSession replays the initializers' recorded step/alloc
//     drain and output bytes onto the clone's Env instead, so budgets
//     and output land exactly where a fresh session would put them.
//   - The clone walk is deterministic (classes in TypeID order, values
//     in field/element order — the same visit order HeapChecksum uses),
//     and Verify() checks a probe clone against the recorded checksum
//     before a snapshot is ever served.
//   - A snapshot only forms when static init SUCCEEDS under the
//     building session's budgets. Sessions whose budgets are too tight
//     to survive init (Admits reports false) are declined and must run
//     fresh, so mid-init kills keep their exact fresh-session behavior.

// LoadTrustedDeferred is loadCommon plus engine binding, with static
// initialization left to the caller (RunStaticInit): the session exists
// but has executed no guest code. comp takes precedence over prep; both
// nil selects the reference CST walker — mirroring LoadTrusted /
// LoadTrustedPrepared / LoadTrustedCompiled, which are equivalent to
// this followed immediately by RunStaticInit.
func LoadTrustedDeferred(mod *core.Module, prep *Prepared, comp *Compiled, env *rt.Env) (*Loader, error) {
	if comp != nil && len(comp.Funcs) != len(mod.Funcs) {
		return nil, fmt.Errorf("interp: compiled form does not match module")
	}
	if comp == nil && prep != nil && len(prep.Funcs) != len(mod.Funcs) {
		return nil, fmt.Errorf("interp: prepared form does not match module")
	}
	l, err := loadCommon(mod, env)
	if err != nil {
		return nil, err
	}
	l.prep = prep
	l.comp = comp
	return l, nil
}

// Snapshot is the frozen post-static-init state of one (module, engine)
// pair: a detached deep copy of every class's statics and the heap
// reachable from them, the initializers' printed bytes and budget
// drain, the object-id cursor, and the heap checksum at freeze time.
// A Snapshot is immutable once built and may serve concurrent
// NewSession calls.
type Snapshot struct {
	mod  *core.Module
	prep *Prepared
	comp *Compiled

	// classes is a detached class table holding the frozen statics: it
	// shares nothing with the building session, so the builder can keep
	// executing (and mutating its own statics) after the snapshot is
	// taken.
	classes map[core.TypeID]*rt.ClassInfo

	initOut    []byte
	initSteps  int64
	initAllocs int64
	nextID     int64
	checksum   uint64
}

// classMap pairs two sessions' class tables by TypeID for the cloner.
func classMap(src, dst map[core.TypeID]*rt.ClassInfo) map[*rt.ClassInfo]*rt.ClassInfo {
	m := make(map[*rt.ClassInfo]*rt.ClassInfo, len(src))
	for id, ci := range src {
		m[ci] = dst[id]
	}
	return m
}

// sortedTypeIDs is the deterministic class visit order shared by the
// checksum walk and the snapshot clone walk.
func sortedTypeIDs(classes map[core.TypeID]*rt.ClassInfo) []core.TypeID {
	ids := make([]core.TypeID, 0, len(classes))
	for id := range classes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// copyStatics clones every class's statics from src into dst (already
// paired by TypeID) with one shared cloner, preserving aliasing across
// classes.
func copyStatics(src, dst map[core.TypeID]*rt.ClassInfo) {
	c := rt.NewCloner(classMap(src, dst))
	for _, id := range sortedTypeIDs(src) {
		from, to := src[id].Statics, dst[id].Statics
		for i, v := range from {
			to[i] = c.Value(v)
		}
	}
}

// Snapshot freezes the session's current state (normally: immediately
// after RunStaticInit succeeded, before RunMain). initOut is the output
// the session has printed so far; NewSession replays it so a clone's
// response carries the same bytes a fresh session would print during
// init.
func (l *Loader) Snapshot(initOut []byte) (*Snapshot, error) {
	detached, err := loadCommon(l.Mod, &rt.Env{})
	if err != nil {
		return nil, err
	}
	copyStatics(l.classes, detached.classes)
	s := &Snapshot{
		mod:        l.Mod,
		prep:       l.prep,
		comp:       l.comp,
		classes:    detached.classes,
		initOut:    append([]byte(nil), initOut...),
		initSteps:  l.Env.Steps,
		initAllocs: l.Env.Allocs,
		nextID:     l.Env.NextID(),
		checksum:   l.HeapChecksum(),
	}
	return s, nil
}

// InitSteps is the step budget static initialization drained.
func (s *Snapshot) InitSteps() int64 { return s.initSteps }

// InitAllocs is the allocation budget static initialization drained.
func (s *Snapshot) InitAllocs() int64 { return s.initAllocs }

// Checksum is the deterministic heap checksum at freeze time.
func (s *Snapshot) Checksum() uint64 { return s.checksum }

// Admits reports whether a session with the given budgets (0 =
// unlimited) would have survived static initialization. A session it
// rejects must run fresh: its fresh run dies mid-init, a state a cheap
// clone cannot reproduce.
func (s *Snapshot) Admits(maxSteps, maxAlloc int64) bool {
	if maxSteps > 0 && maxSteps < s.initSteps {
		return false
	}
	if maxAlloc > 0 && maxAlloc < s.initAllocs {
		return false
	}
	return true
}

// NewSession builds a ready-to-RunMain session from the snapshot: a
// fresh class table, a deep copy of the frozen statics and heap, the
// initializers' output replayed to env.Out, their budget drain
// pre-charged (without tripping limits — callers gate on Admits), and
// the object-id cursor restored so identity hashes continue exactly
// where a fresh session's would.
func (s *Snapshot) NewSession(env *rt.Env) (*Loader, error) {
	l, err := LoadTrustedDeferred(s.mod, s.prep, s.comp, env)
	if err != nil {
		return nil, err
	}
	copyStatics(s.classes, l.classes)
	if len(s.initOut) > 0 && env.Out != nil {
		if _, err := env.Out.Write(s.initOut); err != nil {
			return nil, fmt.Errorf("interp: snapshot output replay: %w", err)
		}
	}
	env.Steps += s.initSteps
	env.Allocs += s.initAllocs
	env.SetNextID(s.nextID)
	return l, nil
}

// Verify probes the snapshot's integrity before it is served: a
// throwaway clone must reproduce the recorded heap checksum and init
// output byte-exactly. It catches any nondeterminism or aliasing loss
// in the clone machinery at pool-insert time, once per snapshot,
// instead of letting a corrupt snapshot serve divergent sessions.
func (s *Snapshot) Verify() error {
	var out bytes.Buffer
	l, err := s.NewSession(&rt.Env{Out: &out})
	if err != nil {
		return fmt.Errorf("interp: snapshot verify: %w", err)
	}
	if got := l.HeapChecksum(); got != s.checksum {
		return fmt.Errorf("interp: snapshot clone checksum %#x != frozen %#x", got, s.checksum)
	}
	if !bytes.Equal(out.Bytes(), s.initOut) {
		return fmt.Errorf("interp: snapshot clone init output diverges: %q != %q", out.Bytes(), s.initOut)
	}
	if l.Env.Steps != s.initSteps || l.Env.Allocs != s.initAllocs {
		return fmt.Errorf("interp: snapshot clone budget drain %d/%d != frozen %d/%d",
			l.Env.Steps, l.Env.Allocs, s.initSteps, s.initAllocs)
	}
	return nil
}
