package interp_test

import (
	"bytes"
	"strings"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
)

func compile(t *testing.T, src string) *core.Module {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func runPreparedMain(t *testing.T, mod *core.Module) string {
	t.Helper()
	prep, err := interp.Prepare(mod)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	var out bytes.Buffer
	l, err := interp.LoadTrustedPrepared(mod, prep, &rt.Env{Out: &out, MaxSteps: 10_000_000})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := l.RunMain(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

// TestPrepareOperandResolution drives the (l, r)→flat-register mapping
// through programs whose operands live at different dominator depths
// and whose phis merge values from different predecessor blocks. Each
// case must (a) prepare without error, (b) print the same bytes on the
// prepared engine as the source dictates, and (c) satisfy the slot
// invariant: register indices are the SSA value ids, bounded by
// NumValues()+1.
func TestPrepareOperandResolution(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			// Use in the defining block: dominator depth 0.
			name: "depth0_same_block",
			src: `
class Main {
    static void main() {
        int a = 7;
        int b = a * a;
        System.out.println(b + a);
    }
}`,
			want: "56\n",
		},
		{
			// Operand defined one dominator level above its use.
			name: "depth1_into_branch",
			src: `
class Main {
    static void main() {
        int a = 21;
        if (a > 3) {
            System.out.println(a * 2);
        } else {
            System.out.println(a);
        }
    }
}`,
			want: "42\n",
		},
		{
			// A chain of nested ifs: the innermost use reads operands
			// defined at every level of the dominator tree above it.
			name: "deep_dominator_chain",
			src: `
class Main {
    static void main() {
        int a = 1;
        if (a > 0) {
            int b = a + 1;
            if (b > 1) {
                int c = b + a;
                if (c > 2) {
                    int d = c + b + a;
                    if (d > 5) {
                        System.out.println(a + b + c + d);
                    }
                }
            }
        }
    }
}`,
			want: "12\n",
		},
		{
			// One phi, two predecessor blocks carrying different values.
			name: "phi_from_two_predecessors",
			src: `
class Main {
    static int pick(boolean top) {
        int x;
        if (top) { x = 11; } else { x = 22; }
        return x;
    }
    static void main() {
        System.out.println(pick(true) + pick(false));
    }
}`,
			want: "33\n",
		},
		{
			// Loop-carried phis: entry edge and backedge feed different
			// values, and the parallel-move semantics matter because the
			// swapped pair reads both phis' previous values.
			name: "phi_swap_in_loop",
			src: `
class Main {
    static void main() {
        int a = 0;
        int b = 1;
        for (int i = 0; i < 10; i++) {
            int t = a + b;
            a = b;
            b = t;
        }
        System.out.println(a);
        System.out.println(b);
    }
}`,
			want: "55\n89\n",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mod := compile(t, tc.src)
			if got := runPreparedMain(t, mod); got != tc.want {
				t.Errorf("prepared output %q, want %q", got, tc.want)
			}

			prep, err := interp.Prepare(mod)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			for i, pf := range prep.Funcs {
				f := mod.Funcs[i]
				if want := int32(f.NumValues() + 1); pf.NumRegs != want {
					t.Errorf("%s: NumRegs = %d, want NumValues()+1 = %d", f.Name, pf.NumRegs, want)
				}
				checkRegisterBounds(t, pf)
				checkParamSlots(t, f, pf)
				checkPhiMoves(t, f, pf)
			}
		})
	}
}

// checkRegisterBounds asserts every register index embedded in the
// prepared code is inside the function's register file.
func checkRegisterBounds(t *testing.T, pf *interp.PFunc) {
	t.Helper()
	ok := func(r int32) bool { return r >= 0 && r < pf.NumRegs }
	for pc := range pf.Code {
		in := &pf.Code[pc]
		if !ok(in.Dst) {
			t.Errorf("%s pc %d: Dst %d out of range", pf.Name, pc, in.Dst)
		}
		for _, m := range in.Moves {
			if !ok(m.Dst) || !ok(m.Src) {
				t.Errorf("%s pc %d: move %v out of range", pf.Name, pc, m)
			}
		}
		if in.Raise != nil {
			for _, m := range in.Raise.Moves {
				if !ok(m.Dst) || !ok(m.Src) {
					t.Errorf("%s pc %d: raise move %v out of range", pf.Name, pc, m)
				}
			}
		}
		for _, a := range in.Args {
			if !ok(a) {
				t.Errorf("%s pc %d: call arg register %d out of range", pf.Name, pc, a)
			}
		}
	}
}

// checkParamSlots asserts the slot invariant directly on the parameter
// instructions: the prepared PParam for OpParam v with index k must
// write register int32(v) from args[k].
func checkParamSlots(t *testing.T, f *core.Func, pf *interp.PFunc) {
	t.Helper()
	want := map[int32]int32{} // param index -> SSA value id
	for _, b := range f.Blocks {
		for _, in := range b.Code {
			if in.Op == core.OpParam {
				want[in.Aux] = int32(in.ID)
			}
		}
	}
	for pc := range pf.Code {
		in := &pf.Code[pc]
		if in.Op != interp.PParam {
			continue
		}
		id, ok := want[in.A]
		if !ok {
			t.Errorf("%s pc %d: PParam reads args[%d] with no matching OpParam", pf.Name, pc, in.A)
			continue
		}
		if in.Dst != id {
			t.Errorf("%s pc %d: PParam for arg %d writes register %d, want SSA id %d",
				pf.Name, pc, in.A, in.Dst, id)
		}
		delete(want, in.A)
	}
	for k, id := range want {
		t.Errorf("%s: no PParam emitted for OpParam v%d (arg %d)", pf.Name, id, k)
	}
}

// checkPhiMoves asserts every phi of the function is the destination of
// at least one prepared move, and only of moves (phi registers are
// never written by straight-line instructions).
func checkPhiMoves(t *testing.T, f *core.Func, pf *interp.PFunc) {
	t.Helper()
	phis := map[int32]bool{}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			phis[int32(phi.ID)] = false
		}
	}
	if len(phis) == 0 {
		return
	}
	for pc := range pf.Code {
		in := &pf.Code[pc]
		if _, isPhi := phis[in.Dst]; isPhi && in.Op != interp.PMoves && in.Op != interp.PJump &&
			in.Op != interp.PBranchFalse && in.Dst != 0 {
			t.Errorf("%s pc %d: %v writes phi register %d directly", pf.Name, pc, in.Op, in.Dst)
		}
		for _, m := range in.Moves {
			if _, isPhi := phis[m.Dst]; isPhi {
				phis[m.Dst] = true
			}
		}
		if in.Raise != nil {
			for _, m := range in.Raise.Moves {
				if _, isPhi := phis[m.Dst]; isPhi {
					phis[m.Dst] = true
				}
			}
		}
	}
	for id, moved := range phis {
		if !moved {
			t.Errorf("%s: phi register %d is never the destination of a move", pf.Name, id)
		}
	}
}

// TestPrepareRejectsCorruptModules mutates decoded modules into shapes
// only a corrupted (post-verifier-bypass) module could have and asserts
// Prepare returns an error instead of panicking. These states are
// unreachable through Load/CheckWire — the verifier rejects them — but
// Prepare is the last line of defense for hand-built modules.
func TestPrepareRejectsCorruptModules(t *testing.T) {
	const src = `
class Main {
    static int f(int n) {
        int s = 0;
        for (int i = 0; i < n; i++) { s = s + i; }
        return s;
    }
    static void main() { System.out.println(f(5)); }
}`

	// Locate a function with a loop (phis) and instructions.
	pickFunc := func(mod *core.Module) *core.Func {
		for _, f := range mod.Funcs {
			for _, b := range f.Blocks {
				if len(b.Phis) > 0 {
					return f
				}
			}
		}
		t.Fatal("no function with phis in test module")
		return nil
	}

	cases := []struct {
		name    string
		corrupt func(mod *core.Module)
		wantSub string
	}{
		{
			name: "operand_value_out_of_range",
			corrupt: func(mod *core.Module) {
				f := pickFunc(mod)
				for _, b := range f.Blocks {
					for _, in := range b.Code {
						if len(in.Args) > 0 {
							in.Args[0] = 9999
							return
						}
					}
				}
			},
			wantSub: "out of range",
		},
		{
			name: "phi_input_out_of_range",
			corrupt: func(mod *core.Module) {
				f := pickFunc(mod)
				for _, b := range f.Blocks {
					if len(b.Phis) > 0 {
						b.Phis[0].Args[0] = 9999
						return
					}
				}
			},
			wantSub: "out of range",
		},
		{
			name: "phi_arity_mismatch",
			corrupt: func(mod *core.Module) {
				f := pickFunc(mod)
				for _, b := range f.Blocks {
					if len(b.Phis) > 0 {
						b.Phis[0].Args = b.Phis[0].Args[:1]
						return
					}
				}
			},
			wantSub: "inputs",
		},
		{
			name: "field_index_out_of_range",
			corrupt: func(mod *core.Module) {
				for _, f := range mod.Funcs {
					for _, b := range f.Blocks {
						for _, in := range b.Code {
							if in.Op == core.OpXCall || in.Op == core.OpXDispatch {
								in.Op = core.OpGetField
								in.Field = 1 << 20
								return
							}
						}
					}
				}
				t.Fatal("no call instruction to corrupt")
			},
			wantSub: "field index",
		},
		{
			name: "method_index_out_of_range",
			corrupt: func(mod *core.Module) {
				for _, f := range mod.Funcs {
					for _, b := range f.Blocks {
						for _, in := range b.Code {
							if in.Op == core.OpXCall || in.Op == core.OpXDispatch {
								in.Method = 1 << 20
								return
							}
						}
					}
				}
				t.Fatal("no call instruction to corrupt")
			},
			wantSub: "method index",
		},
		{
			name: "type_id_out_of_range",
			corrupt: func(mod *core.Module) {
				for _, f := range mod.Funcs {
					for _, b := range f.Blocks {
						for _, in := range b.Code {
							if len(in.Args) > 0 {
								in.Op = core.OpNew
								in.TypeArg = 1 << 20
								in.Args = nil
								return
							}
						}
					}
				}
			},
			wantSub: "type id",
		},
		{
			name: "non_executable_opcode",
			corrupt: func(mod *core.Module) {
				f := pickFunc(mod)
				for _, b := range f.Blocks {
					for _, in := range b.Code {
						in.Op = core.OpMem0
						in.Args = nil
						return
					}
				}
			},
			wantSub: "not executable",
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mod := compile(t, src)
			tc.corrupt(mod)
			prep, err := interp.Prepare(mod)
			if err == nil {
				t.Fatalf("Prepare accepted a corrupt module (got %d funcs)", len(prep.Funcs))
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
