package interp

import (
	"fmt"

	"safetsa/internal/core"
	"safetsa/internal/rt"
)

// This file is the closure-threading backend, the third execution
// engine: Compile fuses each PreparedInst of an already-prepared module
// into a pre-bound Go closure (a thunk) that performs the instruction
// and returns the next pc, so the dispatch loop is a bare indirect call
// chain — no opcode switch, no per-step field decoding. Operand
// registers, jump targets, phi-move sets, and exception edges are all
// captured at compile time; hot primitives (int/long/double arithmetic
// and comparisons) are specialized into dedicated closures instead of
// going through the shared evalPrim switch.
//
// Compile runs strictly after Prepare (which runs strictly after the
// verifier) and repeats no verification: the prepared form is already a
// faithful lowering of a verified module, and re-checking it would buy
// nothing — the thunks trust the same invariants runPrepared trusts.
// Like Prepare, however, Compile bounds-checks every table index it
// bakes into a closure (registers, jump targets, methods, types),
// returning an error — never panicking — on a reference only a
// hand-built or corrupted prepared form could contain.
//
// Budget parity is structural: every thunk lowered from an opcode below
// pCtrl calls rt.Env.Step() before any side effect, exactly where
// runPrepared charges, and allocation charges flow through the same
// Env.NewObject/NewArray/Concat entry points — so step kills, alloc
// kills, and interrupts land on the identical instruction in all three
// engines, which the three-way differential oracle checks bit-exactly.
//
// Shared-module invariant: a Compiled, like the Prepared it was built
// from, is immutable and session-free — thunks never capture the
// Loader or the Env. All mutable state (registers, arguments, the
// caught-exception slot) reaches a thunk through the *cframe argument,
// so one Compiled may back any number of concurrent sessions.

// cthunk executes one fused instruction and returns the next pc, or
// cDone to leave the function.
type cthunk func(fr *cframe) int32

// cDone is the pc sentinel a return thunk yields to stop the dispatch
// loop.
const cDone = int32(-1)

// CFunc is one compiled function body.
type CFunc struct {
	Name string
	// NumRegs matches the prepared form: slot v holds SSA value v,
	// slot 0 is the void-result scratch register.
	NumRegs int32
	Code    []cthunk
}

// Compiled is the closure-threaded form of a module. It is immutable
// after Compile returns and may be shared by any number of concurrent
// execution sessions.
type Compiled struct {
	Funcs []*CFunc // parallel to Module.Funcs
	// Insts is the total fused thunk count (for diagnostics and cache
	// accounting).
	Insts int
}

// cframe is the per-invocation state of one compiled function: the
// session it runs in plus the register file. Thunks receive everything
// session-scoped through here, never through their closures.
type cframe struct {
	l      *Loader
	env    *rt.Env
	regs   []rt.Value
	args   []rt.Value
	caught rt.Value
	ret    rt.Value
}

// craise raises exception value v from a compiled site: into the
// precomputed handler (applying the exception edge's phi moves and
// returning the handler pc) or out of the function as rt.Thrown — the
// closure-threaded mirror of praise.
func (fr *cframe) craise(rs *RaiseSite, v rt.Value) int32 {
	if rs == nil {
		panic(rt.Thrown{Val: v})
	}
	applyMoves(fr.regs, rs.Moves)
	fr.caught = v
	return rs.Target
}

// Compile fuses a prepared module into closure-threaded code. prep must
// have been built by Prepare from mod; Compile never executes guest
// code and never panics — a prepared form whose embedded references do
// not resolve yields an error.
func Compile(mod *core.Module, prep *Prepared) (*Compiled, error) {
	if prep == nil || len(prep.Funcs) != len(mod.Funcs) {
		return nil, fmt.Errorf("interp: prepared form does not match module")
	}
	c := &Compiled{Funcs: make([]*CFunc, len(prep.Funcs))}
	for i, pf := range prep.Funcs {
		cf, err := compileFunc(mod, pf)
		if err != nil {
			return nil, fmt.Errorf("interp: compile %s: %w", pf.Name, err)
		}
		c.Funcs[i] = cf
		c.Insts += len(cf.Code)
	}
	return c, nil
}

// LoadTrustedCompiled is LoadTrusted for a session that executes the
// closure-threaded form: same link checks, class metadata, and static
// initializers, but every function body (the initializers included)
// runs through the thunk chains. comp must have been built by Compile
// from this exact module; like the module, it is read-only and may back
// any number of concurrent sessions.
func LoadTrustedCompiled(mod *core.Module, comp *Compiled, env *rt.Env) (*Loader, error) {
	if comp == nil || len(comp.Funcs) != len(mod.Funcs) {
		return nil, fmt.Errorf("interp: compiled form does not match module")
	}
	l, err := loadCommon(mod, env)
	if err != nil {
		return nil, err
	}
	l.comp = comp
	if err := l.RunStaticInit(); err != nil {
		return nil, err
	}
	return l, nil
}

// RunCompiled loads a verified module with its compiled form and runs
// the entry point on the thunk chains — the compiled-engine counterpart
// of LoadTrusted + RunMain.
func RunCompiled(mod *core.Module, comp *Compiled, env *rt.Env) error {
	l, err := LoadTrustedCompiled(mod, comp, env)
	if err != nil {
		return err
	}
	return l.RunMain()
}

// cframePoolCap bounds the per-session free lists: deep recursion grows
// the pool only this far, so a pathological guest cannot pin an
// unbounded number of retired frames.
const cframePoolCap = 64

// getFrame pops a retired invocation frame off the session free list (or
// allocates one on a miss) and resets the caught/ret slots. Recycled
// register files are deliberately NOT zeroed: the wire format encodes
// every operand as an (l, r) walk up the dominator tree and the verifier
// checks that structural tree against the true dominators, so every
// register the prepared form reads was written earlier on that same path
// — stale slot contents are unobservable. (They can pin dead references
// until the slot's next write, but the pool is per-session and capped,
// so the retention is bounded and dies with the session.)
func (l *Loader) getFrame(numRegs int32) *cframe {
	if n := len(l.cfree); n > 0 {
		fr := l.cfree[n-1]
		l.cfree = l.cfree[:n-1]
		if int32(cap(fr.regs)) >= numRegs {
			fr.regs = fr.regs[:numRegs]
		} else {
			fr.regs = make([]rt.Value, numRegs)
		}
		fr.caught = rt.Value{}
		fr.ret = rt.Value{}
		return fr
	}
	return &cframe{l: l, env: l.Env, regs: make([]rt.Value, numRegs)}
}

// putFrame retires a frame to the free list. Frames abandoned by a
// panicking unwind (rt.Thrown, budget kills) are simply never returned —
// the GC reclaims them — so a recycled frame can never be live in two
// invocations at once.
func (l *Loader) putFrame(fr *cframe) {
	if len(l.cfree) < cframePoolCap {
		fr.args = nil
		l.cfree = append(l.cfree, fr)
	}
}

// getArgs pops a call-argument buffer; the caller overwrites every slot
// before the buffer is read, so no clearing is needed.
func (l *Loader) getArgs(n int) []rt.Value {
	if k := len(l.afree); k > 0 {
		buf := l.afree[k-1]
		l.afree = l.afree[:k-1]
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]rt.Value, n)
}

// putArgs retires an argument buffer once the callee has returned.
// Natives only read argument values during the call (none retain the
// slice), and guest frames release fr.args before being pooled, so the
// buffer cannot be reachable from live execution state.
func (l *Loader) putArgs(buf []rt.Value) {
	if len(l.afree) < cframePoolCap {
		l.afree = append(l.afree, buf)
	}
}

// runCompiled executes one compiled function body: call the thunk at
// pc, go where it says, until a return thunk yields cDone.
func (l *Loader) runCompiled(cf *CFunc, args []rt.Value) rt.Value {
	fr := l.getFrame(cf.NumRegs)
	fr.args = args
	code := cf.Code
	for pc := int32(0); pc >= 0; {
		pc = code[pc](fr)
	}
	ret := fr.ret
	l.putFrame(fr)
	return ret
}

// cinvoke runs a resolved callee: compiled function body or native
// method.
func (l *Loader) cinvoke(mr *core.MethodRef, fi int32, args []rt.Value) rt.Value {
	if fi >= 0 {
		return l.runCompiled(l.comp.Funcs[fi], args)
	}
	return l.native(mr, args)
}

// ccallProtected is cinvoke under a handler: an uncaught callee
// exception is intercepted instead of unwinding this frame.
func (l *Loader) ccallProtected(mr *core.MethodRef, fi int32, args []rt.Value) (out rt.Value, thrown rt.Value, caught bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		t, ok := r.(rt.Thrown)
		if !ok {
			panic(r)
		}
		thrown, caught = t.Val, true
	}()
	out = l.cinvoke(mr, fi, args)
	return out, thrown, false
}

// ---------------------------------------------------------------------
// The fusing compiler.

// ccomp validates prepared-form references while lowering one function.
type ccomp struct {
	mod *core.Module
	pf  *PFunc
}

func compileFunc(mod *core.Module, pf *PFunc) (*CFunc, error) {
	c := &ccomp{mod: mod, pf: pf}
	code := make([]cthunk, len(pf.Code))
	for i := range pf.Code {
		th, err := c.thunk(&pf.Code[i], int32(i+1))
		if err != nil {
			return nil, fmt.Errorf("pc %d (%s): %w", i, pf.Code[i].Op, err)
		}
		code[i] = th
	}
	return &CFunc{Name: pf.Name, NumRegs: pf.NumRegs, Code: code}, nil
}

// reg validates a register index against the function's register file.
func (c *ccomp) reg(r int32) (int32, error) {
	if r < 0 || r >= c.pf.NumRegs {
		return 0, fmt.Errorf("register r%d out of range (%d registers)", r, c.pf.NumRegs)
	}
	return r, nil
}

// target validates a jump destination. The prepared form always ends in
// a PReturn, so every legal target is a real instruction index.
func (c *ccomp) target(t int32) (int32, error) {
	if t < 0 || int(t) >= len(c.pf.Code) {
		return 0, fmt.Errorf("jump target %d out of range (%d instructions)", t, len(c.pf.Code))
	}
	return t, nil
}

func (c *ccomp) moves(mv []Move) ([]Move, error) {
	for _, m := range mv {
		if _, err := c.reg(m.Dst); err != nil {
			return nil, err
		}
		if _, err := c.reg(m.Src); err != nil {
			return nil, err
		}
	}
	return mv, nil
}

// raise validates an exception edge; a nil site (exception leaves the
// function) stays nil.
func (c *ccomp) raise(rs *RaiseSite) (*RaiseSite, error) {
	if rs == nil {
		return nil, nil
	}
	if _, err := c.target(rs.Target); err != nil {
		return nil, fmt.Errorf("exception edge: %w", err)
	}
	if _, err := c.moves(rs.Moves); err != nil {
		return nil, fmt.Errorf("exception edge: %w", err)
	}
	return rs, nil
}

func (c *ccomp) typeArg(t core.TypeID) (core.TypeID, error) {
	if c.mod.Types.Get(t) == nil {
		return 0, fmt.Errorf("type id %d out of range", t)
	}
	return t, nil
}

// thunk fuses one prepared instruction into its closure. next is the
// fallthrough pc (the slot after this instruction).
func (c *ccomp) thunk(in *PreparedInst, next int32) (cthunk, error) {
	switch in.Op {
	case PConst:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		val := in.Val
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = val
			return next
		}, nil

	case PConstStr:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		str := in.Str
		// A fresh *rt.Str per execution, like the other two engines —
		// reference identity (PREq) must not observe compiled-form
		// sharing.
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.RefValue(&rt.Str{S: str})
			return next
		}, nil

	case PParam:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a := in.A // validated against the argument slice at runtime by construction: Prepare bounds Aux to the param list
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = fr.args[a]
			return next
		}, nil

	case PCopy:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = fr.regs[a]
			return next
		}, nil

	case PPrim:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		b, err := c.reg(in.B)
		if err != nil {
			return nil, err
		}
		return compilePrim(in.Prim, dst, a, b, next), nil

	case PXPrim:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		b, err := c.reg(in.B)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		switch in.Prim {
		case core.PIDiv:
			return func(fr *cframe) int32 {
				fr.env.Step()
				bv := fr.regs[b].Int()
				if bv == 0 {
					return fr.craise(rs, fr.l.newExc(fr.l.exc.Arith, "/ by zero"))
				}
				fr.regs[dst] = rt.IntValue(rt.IDiv(fr.regs[a].Int(), bv))
				return next
			}, nil
		case core.PIRem:
			return func(fr *cframe) int32 {
				fr.env.Step()
				bv := fr.regs[b].Int()
				if bv == 0 {
					return fr.craise(rs, fr.l.newExc(fr.l.exc.Arith, "/ by zero"))
				}
				fr.regs[dst] = rt.IntValue(rt.IRem(fr.regs[a].Int(), bv))
				return next
			}, nil
		case core.PLDiv:
			return func(fr *cframe) int32 {
				fr.env.Step()
				bv := fr.regs[b].I
				if bv == 0 {
					return fr.craise(rs, fr.l.newExc(fr.l.exc.Arith, "/ by zero"))
				}
				fr.regs[dst] = rt.LongValue(rt.LDiv(fr.regs[a].I, bv))
				return next
			}, nil
		case core.PLRem:
			return func(fr *cframe) int32 {
				fr.env.Step()
				bv := fr.regs[b].I
				if bv == 0 {
					return fr.craise(rs, fr.l.newExc(fr.l.exc.Arith, "/ by zero"))
				}
				fr.regs[dst] = rt.LongValue(rt.LRem(fr.regs[a].I, bv))
				return next
			}, nil
		}
		return nil, fmt.Errorf("primitive %s is not a trapping division", in.Prim)

	case PNullCheck:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			v := fr.regs[a]
			if v.R == nil {
				return fr.craise(rs, fr.l.newExc(fr.l.exc.NPE, "null dereference"))
			}
			fr.regs[dst] = v
			return next
		}, nil

	case PIndexCheck:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		b, err := c.reg(in.B)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			arr := fr.regs[a].R.(*rt.Array)
			idx := fr.regs[b].Int()
			if idx < 0 || int(idx) >= len(arr.Elems) {
				return fr.craise(rs, fr.l.newExc(fr.l.exc.Bounds,
					fmt.Sprintf("index %d out of bounds for length %d", idx, len(arr.Elems))))
			}
			fr.regs[dst] = rt.IntValue(idx)
			return next
		}, nil

	case PUpcast:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			v := fr.regs[a]
			if v.R != nil && !fr.l.isInstance(v.R, typ) {
				return fr.craise(rs, fr.l.newExc(fr.l.exc.Cast,
					"cannot cast to "+fr.l.Mod.Types.Describe(typ)))
			}
			fr.regs[dst] = v
			return next
		}, nil

	case PInstanceOf:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			v := fr.regs[a]
			fr.regs[dst] = rt.BoolValue(v.R != nil && fr.l.isInstance(v.R, typ))
			return next
		}, nil

	case PGetField:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		slot := in.B
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = fr.regs[a].R.(*rt.Object).Fields[slot]
			return next
		}, nil

	case PSetField:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		cc, err := c.reg(in.C)
		if err != nil {
			return nil, err
		}
		slot := in.B
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[a].R.(*rt.Object).Fields[slot] = fr.regs[cc]
			return next
		}, nil

	case PGetStatic:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		slot := in.B
		// Statics are per-session storage, so the ClassInfo lookup must
		// go through the frame's Loader rather than be pre-bound.
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = fr.l.classes[typ].Statics[slot]
			return next
		}, nil

	case PSetStatic:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		slot := in.B
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.l.classes[typ].Statics[slot] = fr.regs[a]
			return next
		}, nil

	case PGetElt:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		b, err := c.reg(in.B)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			arr := fr.regs[a].R.(*rt.Array)
			fr.regs[dst] = arr.Elems[fr.regs[b].Int()]
			return next
		}, nil

	case PSetElt:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		b, err := c.reg(in.B)
		if err != nil {
			return nil, err
		}
		cc, err := c.reg(in.C)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			arr := fr.regs[a].R.(*rt.Array)
			arr.Elems[fr.regs[b].Int()] = fr.regs[cc]
			return next
		}, nil

	case PArrayLen:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(int32(len(fr.regs[a].R.(*rt.Array).Elems)))
			return next
		}, nil

	case PNew:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.RefValue(fr.env.NewObject(fr.l.classes[typ]))
			return next
		}, nil

	case PNewArray:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		typ, err := c.typeArg(in.Type)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			n := fr.regs[a].Int()
			if n < 0 {
				return fr.craise(rs, fr.l.newExc(fr.l.exc.NegSize, fmt.Sprintf("%d", n)))
			}
			fr.regs[dst] = rt.RefValue(fr.env.NewArray(n, int32(typ)))
			return next
		}, nil

	case PCall, PDispatch:
		return c.callThunk(in, next)

	case PCatch:
		dst, err := c.reg(in.Dst)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = fr.caught
			return next
		}, nil

	case PLoopStep:
		// The whole instruction is the step charge: one unit of budget
		// per loop iteration, same point as the other two engines.
		return func(fr *cframe) int32 {
			fr.env.Step()
			return next
		}, nil

	case PJump:
		target, err := c.target(in.Target)
		if err != nil {
			return nil, err
		}
		mv, err := c.moves(in.Moves)
		if err != nil {
			return nil, err
		}
		switch len(mv) {
		case 0:
			return func(fr *cframe) int32 { return target }, nil
		case 1:
			d, s := mv[0].Dst, mv[0].Src
			return func(fr *cframe) int32 {
				fr.regs[d] = fr.regs[s]
				return target
			}, nil
		}
		return func(fr *cframe) int32 {
			applyMoves(fr.regs, mv)
			return target
		}, nil

	case PBranchFalse:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		target, err := c.target(in.Target)
		if err != nil {
			return nil, err
		}
		mv, err := c.moves(in.Moves)
		if err != nil {
			return nil, err
		}
		switch len(mv) {
		case 0:
			return func(fr *cframe) int32 {
				if fr.regs[a].I == 0 {
					return target
				}
				return next
			}, nil
		case 1:
			d, s := mv[0].Dst, mv[0].Src
			return func(fr *cframe) int32 {
				if fr.regs[a].I == 0 {
					fr.regs[d] = fr.regs[s]
					return target
				}
				return next
			}, nil
		}
		return func(fr *cframe) int32 {
			if fr.regs[a].I == 0 {
				applyMoves(fr.regs, mv)
				return target
			}
			return next
		}, nil

	case PMoves:
		mv, err := c.moves(in.Moves)
		if err != nil {
			return nil, err
		}
		if len(mv) == 1 {
			d, s := mv[0].Dst, mv[0].Src
			return func(fr *cframe) int32 {
				fr.regs[d] = fr.regs[s]
				return next
			}, nil
		}
		return func(fr *cframe) int32 {
			applyMoves(fr.regs, mv)
			return next
		}, nil

	case PReturn:
		return func(fr *cframe) int32 {
			fr.ret = rt.Value{}
			return cDone
		}, nil

	case PReturnVal:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			fr.ret = fr.regs[a]
			return cDone
		}, nil

	case PThrow:
		a, err := c.reg(in.A)
		if err != nil {
			return nil, err
		}
		rs, err := c.raise(in.Raise)
		if err != nil {
			return nil, err
		}
		return func(fr *cframe) int32 {
			v := fr.regs[a]
			if v.R == nil {
				v = fr.l.newExc(fr.l.exc.NPE, "throw of null")
			}
			return fr.craise(rs, v)
		}, nil
	}
	return nil, fmt.Errorf("unhandled prepared opcode %s", in.Op)
}

// callThunk fuses a PCall/PDispatch. The static MethodRef is pre-bound
// (the module is immutable); dispatch re-resolves through the
// receiver's vtable exactly like pcall.
func (c *ccomp) callThunk(in *PreparedInst, next int32) (cthunk, error) {
	if in.A < 0 || int(in.A) >= len(c.mod.Methods) {
		return nil, fmt.Errorf("method index %d out of range", in.A)
	}
	if in.Op == PCall && in.B >= 0 && int(in.B) >= len(c.mod.Funcs) {
		return nil, fmt.Errorf("function index %d out of range", in.B)
	}
	dst, err := c.reg(in.Dst)
	if err != nil {
		return nil, err
	}
	argRegs := in.Args
	for _, r := range argRegs {
		if _, err := c.reg(r); err != nil {
			return nil, err
		}
	}
	rs, err := c.raise(in.Raise)
	if err != nil {
		return nil, err
	}
	methods := c.mod.Methods
	base := &methods[in.A]
	staticFi := in.B
	dispatch := in.Op == PDispatch
	return func(fr *cframe) int32 {
		fr.env.Step()
		mr := base
		args := fr.l.getArgs(len(argRegs))
		for i, r := range argRegs {
			args[i] = fr.regs[r]
		}
		fi := staticFi
		if dispatch {
			// Polymorphic association through the dispatch-table slot.
			// Host-implemented receivers (strings) bind statically.
			if recv, ok := args[0].R.(*rt.Object); ok && int(mr.VSlot) < len(recv.Class.VTable) {
				mr = &methods[recv.Class.VTable[mr.VSlot]]
			}
			fi = mr.FuncIdx
		}
		if rs == nil {
			out := fr.l.cinvoke(mr, fi, args)
			fr.l.putArgs(args)
			fr.regs[dst] = out
			return next
		}
		out, thrown, caught := fr.l.ccallProtected(mr, fi, args)
		fr.l.putArgs(args)
		if caught {
			return fr.craise(rs, thrown)
		}
		fr.regs[dst] = out
		return next
	}, nil
}

// compilePrim specializes the hot primitives — int/long/double
// arithmetic and comparisons, the ops that dominate corpus run time —
// into dedicated closures; everything else (string building, math
// intrinsics, the rare conversions) falls back to the shared evalPrim
// switch, so the engines cannot drift on the long tail.
func compilePrim(p core.PrimOp, dst, a, b, next int32) cthunk {
	switch p {
	case core.PIAdd:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() + fr.regs[b].Int())
			return next
		}
	case core.PISub:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() - fr.regs[b].Int())
			return next
		}
	case core.PIMul:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() * fr.regs[b].Int())
			return next
		}
	case core.PINeg:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(-fr.regs[a].Int())
			return next
		}
	case core.PIAnd:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() & fr.regs[b].Int())
			return next
		}
	case core.PIOr:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() | fr.regs[b].Int())
			return next
		}
	case core.PIXor:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() ^ fr.regs[b].Int())
			return next
		}
	case core.PIShl:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() << (uint32(fr.regs[b].Int()) & 31))
			return next
		}
	case core.PIShr:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.IntValue(fr.regs[a].Int() >> (uint32(fr.regs[b].Int()) & 31))
			return next
		}
	case core.PIEq:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() == fr.regs[b].Int())
			return next
		}
	case core.PINe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() != fr.regs[b].Int())
			return next
		}
	case core.PILt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() < fr.regs[b].Int())
			return next
		}
	case core.PILe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() <= fr.regs[b].Int())
			return next
		}
	case core.PIGt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() > fr.regs[b].Int())
			return next
		}
	case core.PIGe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].Int() >= fr.regs[b].Int())
			return next
		}
	case core.PI2L:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.LongValue(int64(fr.regs[a].Int()))
			return next
		}
	case core.PI2D:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.DoubleValue(float64(fr.regs[a].Int()))
			return next
		}

	case core.PLAdd:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.LongValue(fr.regs[a].I + fr.regs[b].I)
			return next
		}
	case core.PLSub:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.LongValue(fr.regs[a].I - fr.regs[b].I)
			return next
		}
	case core.PLMul:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.LongValue(fr.regs[a].I * fr.regs[b].I)
			return next
		}
	case core.PLEq:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I == fr.regs[b].I)
			return next
		}
	case core.PLNe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I != fr.regs[b].I)
			return next
		}
	case core.PLLt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I < fr.regs[b].I)
			return next
		}
	case core.PLLe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I <= fr.regs[b].I)
			return next
		}
	case core.PLGt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I > fr.regs[b].I)
			return next
		}
	case core.PLGe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I >= fr.regs[b].I)
			return next
		}

	case core.PDAdd:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.DoubleValue(fr.regs[a].D + fr.regs[b].D)
			return next
		}
	case core.PDSub:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.DoubleValue(fr.regs[a].D - fr.regs[b].D)
			return next
		}
	case core.PDMul:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.DoubleValue(fr.regs[a].D * fr.regs[b].D)
			return next
		}
	case core.PDDiv:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.DoubleValue(fr.regs[a].D / fr.regs[b].D)
			return next
		}
	case core.PDEq:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D == fr.regs[b].D)
			return next
		}
	case core.PDNe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D != fr.regs[b].D)
			return next
		}
	case core.PDLt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D < fr.regs[b].D)
			return next
		}
	case core.PDLe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D <= fr.regs[b].D)
			return next
		}
	case core.PDGt:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D > fr.regs[b].D)
			return next
		}
	case core.PDGe:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].D >= fr.regs[b].D)
			return next
		}

	case core.PBNot:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I == 0)
			return next
		}
	case core.PBAnd:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I != 0 && fr.regs[b].I != 0)
			return next
		}
	case core.PBOr:
		return func(fr *cframe) int32 {
			fr.env.Step()
			fr.regs[dst] = rt.BoolValue(fr.regs[a].I != 0 || fr.regs[b].I != 0)
			return next
		}
	}
	// Long tail: string building, math intrinsics, conversions, reference
	// equality — evaluated by the shared switch so all engines agree.
	return func(fr *cframe) int32 {
		fr.env.Step()
		fr.regs[dst] = fr.l.evalPrim(p, fr.regs[a], fr.regs[b])
		return next
	}
}
