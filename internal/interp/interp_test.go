package interp_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
)

func load(t *testing.T, src string) (*interp.Loader, *bytes.Buffer) {
	t.Helper()
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	l, err := interp.Load(mod, &rt.Env{Out: &out, MaxSteps: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return l, &out
}

func TestCallStatic(t *testing.T) {
	l, _ := load(t, `
class Calc {
    static int triple(int x) { return x * 3; }
    static long wide(long x) { return x + 1L; }
}`)
	v, err := l.CallStatic("Calc", "triple", rt.IntValue(14))
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42 {
		t.Fatalf("triple(14) = %d", v.Int())
	}
	v, err = l.CallStatic("Calc", "wide", rt.LongValue(1<<40))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 1<<40+1 {
		t.Fatalf("wide = %d", v.I)
	}
	if _, err := l.CallStatic("Calc", "nope"); err == nil {
		t.Fatal("missing method found")
	}
}

func TestCallStaticSurfacesExceptions(t *testing.T) {
	l, _ := load(t, `
class Boom {
    static int go(int d) { return 10 / d; }
}`)
	if _, err := l.CallStatic("Boom", "go", rt.IntValue(0)); err == nil ||
		!strings.Contains(err.Error(), "ArithmeticException") {
		t.Fatalf("want arithmetic exception, got %v", err)
	}
}

func TestExceptionUnwindsManyFrames(t *testing.T) {
	l, out := load(t, `
class Main {
    static int dive(int n) {
        if (n == 0) { throw new Exception("bottom"); }
        return dive(n - 1);
    }
    static void main() {
        try {
            dive(50);
        } catch (Exception e) {
            System.out.println("caught " + e.getMessage());
        }
    }
}`)
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "caught bottom\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestFinallyRunsOnExceptionalReturnPath(t *testing.T) {
	l, out := load(t, `
class Main {
    static int f(boolean blow) {
        try {
            if (blow) { throw new Exception("x"); }
            return 1;
        } catch (Exception e) {
            return 2;
        } finally {
            System.out.println("fin");
        }
    }
    static void main() {
        System.out.println(f(false));
        System.out.println(f(true));
    }
}`)
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "fin\n1\nfin\n2\n" {
		t.Fatalf("output %q", out.String())
	}
}

func TestDispatchThroughDeepHierarchy(t *testing.T) {
	l, out := load(t, `
class A { int tag() { return 1; } }
class B extends A { int tag() { return 2; } }
class C extends B {}
class D extends C { int tag() { return 4; } }
class Main {
    static void main() {
        A[] xs = new A[4];
        xs[0] = new A(); xs[1] = new B(); xs[2] = new C(); xs[3] = new D();
        for (int i = 0; i < xs.length; i++) {
            System.out.print(xs[i].tag());
        }
        System.out.println();
    }
}`)
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "1224\n" {
		t.Fatalf("dispatch result %q", out.String())
	}
}

func TestStaticInitializationOrder(t *testing.T) {
	l, out := load(t, `
class First { static int a = 10; }
class Second { static int b = First.a * 2; }
class Main {
    static void main() { System.out.println(Second.b); }
}`)
	if err := l.RunMain(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "20\n" {
		t.Fatalf("clinit order: %q", out.String())
	}
}

func TestLoaderRejectsNoMain(t *testing.T) {
	l, _ := load(t, `class Quiet { int x; }`)
	if err := l.RunMain(); err == nil {
		t.Fatal("RunMain on a module without main succeeded")
	}
}

func TestStepLimitSurfacesAsError(t *testing.T) {
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": `
class Main {
    static void main() {
        int i = 0;
        while (true) { i++; }
    }
}`})
	if err != nil {
		t.Fatal(err)
	}
	_, err = driver.RunModule(mod, 10_000)
	if !errors.Is(err, rt.ErrStepLimit) {
		t.Fatalf("want step-limit error, got %v", err)
	}
}
