package interp_test

import (
	"bytes"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
)

// sessionResult is everything a guest session can observe or be
// observed by: printed bytes, the Go-level error, drained budget
// counters, and the final reachable-heap checksum.
type sessionResult struct {
	out    string
	err    error
	steps  int64
	allocs int64
	heap   uint64
}

// runSession executes mod once on the requested engine with the given
// budgets. prep and comp are reused across sessions (they are
// immutable), matching how the codeserver shares one prepared/compiled
// form among all /run sessions.
func runSession(t *testing.T, mod *core.Module, prep *interp.Prepared, comp *interp.Compiled, engine string, maxSteps, maxAlloc int64) sessionResult {
	t.Helper()
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, MaxAlloc: maxAlloc}
	var l *interp.Loader
	var err error
	switch engine {
	case driver.EnginePrepared:
		l, err = interp.LoadTrustedPrepared(mod, prep, env)
	case driver.EngineCompiled:
		l, err = interp.LoadTrustedCompiled(mod, comp, env)
	default:
		l, err = interp.LoadTrusted(mod, env)
	}
	res := sessionResult{steps: env.Steps, allocs: env.Allocs}
	if err != nil {
		res.err = err
		res.out = out.String()
		res.steps, res.allocs = env.Steps, env.Allocs
		if l != nil {
			res.heap = l.HeapChecksum()
		}
		return res
	}
	res.err = l.RunMain()
	res.out = out.String()
	res.steps, res.allocs = env.Steps, env.Allocs
	res.heap = l.HeapChecksum()
	return res
}

// compareSessions asserts full observable equality between a reference
// session and a session on the named engine: output bytes, error text,
// cumulative step and alloc budget drain, and the final heap checksum.
func compareSessions(t *testing.T, engine string, ref, got sessionResult) {
	t.Helper()
	if ref.out != got.out {
		t.Errorf("output diverged:\nreference: %q\n%s: %q", ref.out, engine, got.out)
	}
	refErr, gotErr := "", ""
	if ref.err != nil {
		refErr = ref.err.Error()
	}
	if got.err != nil {
		gotErr = got.err.Error()
	}
	if refErr != gotErr {
		t.Errorf("error diverged:\nreference: %q\n%s: %q", refErr, engine, gotErr)
	}
	if ref.err != nil {
		if rk, gk := rt.KillReason(ref.err), rt.KillReason(got.err); rk != gk {
			t.Errorf("kill reason diverged: reference %q, %s %q", rk, engine, gk)
		}
	}
	if ref.steps != got.steps {
		t.Errorf("step drain diverged: reference %d, %s %d", ref.steps, engine, got.steps)
	}
	if ref.allocs != got.allocs {
		t.Errorf("alloc drain diverged: reference %d, %s %d", ref.allocs, engine, got.allocs)
	}
	if ref.heap != got.heap {
		t.Errorf("heap checksum diverged: reference %#x, %s %#x", ref.heap, engine, got.heap)
	}
}

// excStormSrc is a dedicated exception-heavy row for the three-way
// differential: every trap kind the runtime can raise (arithmetic,
// bounds, null, explicit throw), caught at varying depths, plus
// rethrow across recursive frames — so the exception-edge phi moves and
// the protected-call recovery paths of all three engines are compared
// under full budgets and under mid-run kills.
const excStormSrc = `
class ExcStorm {
    int depth;

    ExcStorm(int d) { depth = d; }

    static int divTrap(int a, int b) {
        try {
            return a / b;
        } catch (ArithmeticException e) {
            return a - b;
        }
    }

    static int deep(int n) {
        if (n == 0) { throw new Exception("bottom"); }
        try {
            return deep(n - 1);
        } catch (Exception e) {
            if (n % 3 == 0) { throw new Exception("re" + n); }
            return n;
        }
    }

    static int bounds(int[] a, int i) {
        try {
            return a[i];
        } catch (IndexOutOfBoundsException e) {
            return -1;
        }
    }

    static int nullTrap(ExcStorm s) {
        try {
            return s.depth;
        } catch (NullPointerException e) {
            return -7;
        }
    }

    static void main() {
        int acc = 0;
        for (int i = 0; i < 200; i++) {
            acc += divTrap(1000 + i, i % 7);
            try {
                acc += deep(i % 13);
            } catch (Exception e) {
                acc += e.getMessage().length();
            }
            int[] arr = new int[8];
            arr[i % 8] = i;
            acc += bounds(arr, i % 11);
            ExcStorm s = null;
            if (i % 2 == 0) { s = new ExcStorm(i); }
            acc += nullTrap(s);
            try {
                if (i % 5 == 0) { throw new Exception("x" + i); }
                acc += 3;
            } catch (Exception e) {
                acc += e.getMessage().length();
            }
        }
        System.out.println(acc);
    }
}
`

// excDieSrc terminates main with an uncaught exception after real work,
// so the engines are also compared on the unwind-out-of-main path: the
// error text, the budget drained before the throw, and the heap left
// behind must all match.
const excDieSrc = `
class ExcDie {
    static int burn(int n) {
        int acc = 0;
        for (int i = 0; i < n; i++) {
            try {
                if (i % 3 == 1) { throw new Exception("t" + i); }
                acc += i;
            } catch (Exception e) {
                acc -= 1;
            }
        }
        return acc;
    }

    static void main() {
        System.out.println(burn(100));
        throw new Exception("unhandled " + burn(50));
    }
}
`

// TestEngineParityExceptionHeavy is the satellite coverage for the
// exception-heavy rows: both programs above run on all three engines
// under a full budget, a step budget at half the real drain, and an
// alloc budget at half the real drain, with every observable compared
// byte-exactly (output, error text, kill reason, budget drain, heap
// checksum).
func TestEngineParityExceptionHeavy(t *testing.T) {
	cases := []struct {
		name, file, src string
		wantErr         bool
	}{
		{"ExcStorm", "ExcStorm.tj", excStormSrc, false},
		{"ExcDie", "ExcDie.tj", excDieSrc, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mod, err := driver.CompileTSASource(map[string]string{c.file: c.src})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			prep, err := interp.Prepare(mod)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			comp, err := interp.Compile(mod, prep)
			if err != nil {
				t.Fatalf("compile backend: %v", err)
			}

			const full = 50_000_000
			ref := runSession(t, mod, prep, comp, driver.EngineReference, full, full)
			compareSessions(t, driver.EnginePrepared,
				ref, runSession(t, mod, prep, comp, driver.EnginePrepared, full, full))
			compareSessions(t, driver.EngineCompiled,
				ref, runSession(t, mod, prep, comp, driver.EngineCompiled, full, full))
			if c.wantErr && ref.err == nil {
				t.Fatal("expected the guest to die of an uncaught exception")
			}
			if !c.wantErr && ref.err != nil {
				t.Fatalf("guest failed under full budget: %v", ref.err)
			}
			if ref.out == "" {
				t.Fatal("guest printed nothing; the run proves nothing")
			}

			// Mid-run kills: the kill must land on the same instruction in
			// every engine even while unwinding through handlers.
			if half := ref.steps / 2; half > 0 {
				refK := runSession(t, mod, prep, comp, driver.EngineReference, half, full)
				compareSessions(t, driver.EnginePrepared,
					refK, runSession(t, mod, prep, comp, driver.EnginePrepared, half, full))
				compareSessions(t, driver.EngineCompiled,
					refK, runSession(t, mod, prep, comp, driver.EngineCompiled, half, full))
				if rt.KillReason(refK.err) != "step_limit" {
					t.Errorf("expected a step-limit kill at %d steps, got %v", half, refK.err)
				}
			}
			if half := ref.allocs / 2; half > 0 {
				refK := runSession(t, mod, prep, comp, driver.EngineReference, full, half)
				compareSessions(t, driver.EnginePrepared,
					refK, runSession(t, mod, prep, comp, driver.EnginePrepared, full, half))
				compareSessions(t, driver.EngineCompiled,
					refK, runSession(t, mod, prep, comp, driver.EngineCompiled, full, half))
				if rt.KillReason(refK.err) != "alloc_limit" {
					t.Errorf("expected an alloc-limit kill at %d allocs, got %v", half, refK.err)
				}
			}
		})
	}
}

// TestEnginePartityCorpus is the budget-parity property test over the
// full corpus: for every unit, unoptimized and optimized, the prepared
// and compiled engines must drain exactly the same step and alloc
// budget as the reference evaluator, print the same bytes, and leave an
// identical reachable heap. Each unit is then re-run under a step
// budget set to half its full drain and an alloc budget set to half its
// full drain, so the budget-kill paths of all three engines are
// compared too — the guest-kill metrics must not shift when the default
// engine changes.
func TestEngineParityCorpus(t *testing.T) {
	for _, u := range corpus.Units() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			for _, optimize := range []bool{false, true} {
				name := "unopt"
				if optimize {
					name = "opt"
				}
				t.Run(name, func(t *testing.T) {
					mod, err := driver.CompileTSASource(u.Files)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if optimize {
						if _, err := driver.OptimizeModule(mod); err != nil {
							t.Fatalf("optimize: %v", err)
						}
					}
					prep, err := interp.Prepare(mod)
					if err != nil {
						t.Fatalf("prepare: %v", err)
					}
					comp, err := interp.Compile(mod, prep)
					if err != nil {
						t.Fatalf("compile backend: %v", err)
					}

					const full = 50_000_000
					ref := runSession(t, mod, prep, comp, driver.EngineReference, full, full)
					pre := runSession(t, mod, prep, comp, driver.EnginePrepared, full, full)
					cmp := runSession(t, mod, prep, comp, driver.EngineCompiled, full, full)
					compareSessions(t, driver.EnginePrepared, ref, pre)
					compareSessions(t, driver.EngineCompiled, ref, cmp)
					if ref.err != nil {
						t.Fatalf("corpus unit failed under full budget: %v", ref.err)
					}

					// Step-kill parity at half the real drain.
					if half := ref.steps / 2; half > 0 {
						refK := runSession(t, mod, prep, comp, driver.EngineReference, half, full)
						preK := runSession(t, mod, prep, comp, driver.EnginePrepared, half, full)
						cmpK := runSession(t, mod, prep, comp, driver.EngineCompiled, half, full)
						compareSessions(t, driver.EnginePrepared, refK, preK)
						compareSessions(t, driver.EngineCompiled, refK, cmpK)
						if rt.KillReason(refK.err) != "step_limit" {
							t.Errorf("expected a step-limit kill at %d steps, got %v", half, refK.err)
						}
					}

					// Alloc-kill parity at half the real drain.
					if half := ref.allocs / 2; half > 0 {
						refK := runSession(t, mod, prep, comp, driver.EngineReference, full, half)
						preK := runSession(t, mod, prep, comp, driver.EnginePrepared, full, half)
						cmpK := runSession(t, mod, prep, comp, driver.EngineCompiled, full, half)
						compareSessions(t, driver.EnginePrepared, refK, preK)
						compareSessions(t, driver.EngineCompiled, refK, cmpK)
						if rt.KillReason(refK.err) != "alloc_limit" {
							t.Errorf("expected an alloc-limit kill at %d allocs, got %v", half, refK.err)
						}
					}
				})
			}
		})
	}
}
