package interp_test

import (
	"bytes"
	"testing"

	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/interp"
	"safetsa/internal/rt"
)

// sessionResult is everything a guest session can observe or be
// observed by: printed bytes, the Go-level error, drained budget
// counters, and the final reachable-heap checksum.
type sessionResult struct {
	out    string
	err    error
	steps  int64
	allocs int64
	heap   uint64
}

// runSession executes mod once on the requested engine with the given
// budgets. prep is reused across sessions (it is immutable), matching
// how the codeserver shares one prepared form among all /run sessions.
func runSession(t *testing.T, mod *core.Module, prep *interp.Prepared, engine string, maxSteps, maxAlloc int64) sessionResult {
	t.Helper()
	var out bytes.Buffer
	env := &rt.Env{Out: &out, MaxSteps: maxSteps, MaxAlloc: maxAlloc}
	var l *interp.Loader
	var err error
	if engine == driver.EnginePrepared {
		l, err = interp.LoadTrustedPrepared(mod, prep, env)
	} else {
		l, err = interp.LoadTrusted(mod, env)
	}
	res := sessionResult{steps: env.Steps, allocs: env.Allocs}
	if err != nil {
		res.err = err
		res.out = out.String()
		res.steps, res.allocs = env.Steps, env.Allocs
		if l != nil {
			res.heap = l.HeapChecksum()
		}
		return res
	}
	res.err = l.RunMain()
	res.out = out.String()
	res.steps, res.allocs = env.Steps, env.Allocs
	res.heap = l.HeapChecksum()
	return res
}

// compareSessions asserts full observable equality between a reference
// and a prepared session: output bytes, error text, cumulative step and
// alloc budget drain, and the final heap checksum.
func compareSessions(t *testing.T, ref, prep sessionResult) {
	t.Helper()
	if ref.out != prep.out {
		t.Errorf("output diverged:\nreference: %q\nprepared:  %q", ref.out, prep.out)
	}
	refErr, prepErr := "", ""
	if ref.err != nil {
		refErr = ref.err.Error()
	}
	if prep.err != nil {
		prepErr = prep.err.Error()
	}
	if refErr != prepErr {
		t.Errorf("error diverged:\nreference: %q\nprepared:  %q", refErr, prepErr)
	}
	if ref.err != nil {
		if rk, pk := rt.KillReason(ref.err), rt.KillReason(prep.err); rk != pk {
			t.Errorf("kill reason diverged: reference %q, prepared %q", rk, pk)
		}
	}
	if ref.steps != prep.steps {
		t.Errorf("step drain diverged: reference %d, prepared %d", ref.steps, prep.steps)
	}
	if ref.allocs != prep.allocs {
		t.Errorf("alloc drain diverged: reference %d, prepared %d", ref.allocs, prep.allocs)
	}
	if ref.heap != prep.heap {
		t.Errorf("heap checksum diverged: reference %#x, prepared %#x", ref.heap, prep.heap)
	}
}

// TestEnginePartityCorpus is the budget-parity property test over the
// full corpus: for every unit, unoptimized and optimized, the prepared
// engine must drain exactly the same step and alloc budget as the
// reference evaluator, print the same bytes, and leave an identical
// reachable heap. Each unit is then re-run under a step budget set to
// half its full drain and an alloc budget set to half its full drain,
// so the budget-kill paths of both engines are compared too — the
// guest-kill metrics must not shift when the default engine changes.
func TestEngineParityCorpus(t *testing.T) {
	for _, u := range corpus.Units() {
		u := u
		t.Run(u.Name, func(t *testing.T) {
			for _, optimize := range []bool{false, true} {
				name := "unopt"
				if optimize {
					name = "opt"
				}
				t.Run(name, func(t *testing.T) {
					mod, err := driver.CompileTSASource(u.Files)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if optimize {
						if _, err := driver.OptimizeModule(mod); err != nil {
							t.Fatalf("optimize: %v", err)
						}
					}
					prep, err := interp.Prepare(mod)
					if err != nil {
						t.Fatalf("prepare: %v", err)
					}

					const full = 50_000_000
					ref := runSession(t, mod, prep, driver.EngineReference, full, full)
					pre := runSession(t, mod, prep, driver.EnginePrepared, full, full)
					compareSessions(t, ref, pre)
					if ref.err != nil {
						t.Fatalf("corpus unit failed under full budget: %v", ref.err)
					}

					// Step-kill parity at half the real drain.
					if half := ref.steps / 2; half > 0 {
						refK := runSession(t, mod, prep, driver.EngineReference, half, full)
						preK := runSession(t, mod, prep, driver.EnginePrepared, half, full)
						compareSessions(t, refK, preK)
						if rt.KillReason(refK.err) != "step_limit" {
							t.Errorf("expected a step-limit kill at %d steps, got %v", half, refK.err)
						}
					}

					// Alloc-kill parity at half the real drain.
					if half := ref.allocs / 2; half > 0 {
						refK := runSession(t, mod, prep, driver.EngineReference, full, half)
						preK := runSession(t, mod, prep, driver.EnginePrepared, full, half)
						compareSessions(t, refK, preK)
						if rt.KillReason(refK.err) != "alloc_limit" {
							t.Errorf("expected an alloc-limit kill at %d allocs, got %v", half, refK.err)
						}
					}
				})
			}
		})
	}
}
