package interp

import (
	"hash/fnv"
	"math"
	"sort"

	"safetsa/internal/rt"
)

// HeapChecksum digests the session's reachable guest heap — every value
// reachable from the static fields of every class, walked in a
// deterministic order — into a 64-bit FNV-1a checksum. Two sessions
// that executed the same program to the same final state produce the
// same checksum regardless of engine, allocation order, or Go pointer
// values: references are named by their first-visit order in the
// deterministic walk, not by identity hashes.
func (l *Loader) HeapChecksum() uint64 {
	h := fnv.New64a()
	w := &heapWalker{h: h, seen: make(map[rt.Ref]uint64)}

	ids := make([]int32, 0, len(l.classes))
	byID := make(map[int32]*rt.ClassInfo, len(l.classes))
	for _, ci := range l.classes {
		ids = append(ids, ci.TypeID)
		byID[ci.TypeID] = ci
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		ci := byID[id]
		w.u64(uint64(uint32(id)))
		w.u64(uint64(len(ci.Statics)))
		for _, v := range ci.Statics {
			w.value(v)
		}
	}
	return h.Sum64()
}

type heapWalker struct {
	h    interface{ Write([]byte) (int, error) }
	seen map[rt.Ref]uint64
}

func (w *heapWalker) u64(v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	w.h.Write(b[:])
}

func (w *heapWalker) value(v rt.Value) {
	if v.R == nil {
		// A flat value: both scalar planes (one of which is the live
		// one; the other is zero for well-typed programs).
		w.u64(1)
		w.u64(uint64(v.I))
		w.u64(math.Float64bits(v.D))
		return
	}
	if id, ok := w.seen[v.R]; ok {
		w.u64(2)
		w.u64(id)
		return
	}
	id := uint64(len(w.seen) + 1)
	w.seen[v.R] = id
	switch r := v.R.(type) {
	case *rt.Str:
		w.u64(3)
		w.h.Write([]byte(r.S))
		w.u64(uint64(len(r.S)))
	case *rt.Array:
		w.u64(4)
		w.u64(uint64(uint32(r.TypeID)))
		w.u64(uint64(len(r.Elems)))
		for _, e := range r.Elems {
			w.value(e)
		}
	case *rt.Object:
		w.u64(5)
		w.u64(uint64(uint32(r.Class.TypeID)))
		w.u64(uint64(len(r.Fields)))
		for _, f := range r.Fields {
			w.value(f)
		}
	default:
		w.u64(6)
	}
}
