// Package dom computes dominator trees over small integer-indexed flow
// graphs. It provides two independent implementations — the iterative
// Cooper–Harvey–Kennedy algorithm used in production and the classic
// Lengauer–Tarjan algorithm [21 in the paper] — which the tests check
// against each other. SafeTSA derives its flow graphs from the Control
// Structure Tree, so block counts are small and the simple algorithm is
// fast in practice.
package dom

// Graph is the input flow graph: nodes are 0..N-1 with node Entry as the
// root; Preds returns the predecessor list of a node.
type Graph struct {
	N     int
	Entry int
	Preds func(int) [][2]int // (pred node, edge tag); tag ignored here
}

// succsOf inverts the predecessor lists.
func succsOf(n int, preds func(int) []int) [][]int {
	succ := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, p := range preds(v) {
			succ[p] = append(succ[p], v)
		}
	}
	return succ
}

// postorder computes a postorder over the reachable subgraph.
func postorder(n, entry int, succ [][]int) []int {
	seen := make([]bool, n)
	order := make([]int, 0, n)
	type frame struct {
		node int
		next int
	}
	stack := []frame{{entry, 0}}
	seen[entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succ[f.node]) {
			s := succ[f.node][f.next]
			f.next++
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	return order
}

// Compute returns idom[v] for every node v reachable from entry using the
// Cooper–Harvey–Kennedy iterative algorithm; idom[entry] == entry and
// idom[v] == -1 for unreachable nodes.
func Compute(n, entry int, preds func(int) []int) []int {
	succ := succsOf(n, preds)
	post := postorder(n, entry, succ)
	postIdx := make([]int, n)
	for i := range postIdx {
		postIdx[i] = -1
	}
	for i, v := range post {
		postIdx[v] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[entry] = entry

	intersect := func(a, b int) int {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		// Reverse postorder.
		for i := len(post) - 1; i >= 0; i-- {
			v := post[i]
			if v == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds(v) {
				if postIdx[p] < 0 || idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom >= 0 && idom[v] != newIdom {
				idom[v] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ComputeLT returns idom[v] using the Lengauer–Tarjan algorithm (simple
// path-compression variant); results match Compute on every graph.
func ComputeLT(n, entry int, preds func(int) []int) []int {
	succ := succsOf(n, preds)

	// DFS numbering.
	semi := make([]int, n) // DFS number, -1 if unreachable
	vertex := make([]int, 0, n)
	parent := make([]int, n)
	for i := range semi {
		semi[i] = -1
		parent[i] = -1
	}
	type frame struct {
		node int
		next int
	}
	stack := []frame{{entry, 0}}
	semi[entry] = 0
	vertex = append(vertex, entry)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(succ[f.node]) {
			s := succ[f.node][f.next]
			f.next++
			if semi[s] < 0 {
				semi[s] = len(vertex)
				vertex = append(vertex, s)
				parent[s] = f.node
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		stack = stack[:len(stack)-1]
	}

	m := len(vertex)
	ancestor := make([]int, n)
	label := make([]int, n)
	dom := make([]int, n)
	bucket := make([][]int, n)
	for i := range ancestor {
		ancestor[i] = -1
		label[i] = i
		dom[i] = -1
	}

	var compress func(v int)
	compress = func(v int) {
		if ancestor[ancestor[v]] < 0 {
			return
		}
		compress(ancestor[v])
		if semi[label[ancestor[v]]] < semi[label[v]] {
			label[v] = label[ancestor[v]]
		}
		ancestor[v] = ancestor[ancestor[v]]
	}
	eval := func(v int) int {
		if ancestor[v] < 0 {
			return label[v]
		}
		compress(v)
		return label[v]
	}

	for i := m - 1; i >= 1; i-- {
		w := vertex[i]
		for _, v := range preds(w) {
			if semi[v] < 0 {
				continue
			}
			u := eval(v)
			if semi[u] < semi[w] {
				semi[w] = semi[u]
			}
		}
		bucket[vertex[semi[w]]] = append(bucket[vertex[semi[w]]], w)
		ancestor[w] = parent[w]
		for _, v := range bucket[parent[w]] {
			u := eval(v)
			if semi[u] < semi[v] {
				dom[v] = u
			} else {
				dom[v] = parent[w]
			}
		}
		bucket[parent[w]] = nil
	}
	for i := 1; i < m; i++ {
		w := vertex[i]
		if dom[w] != vertex[semi[w]] {
			dom[w] = dom[dom[w]]
		}
	}
	dom[entry] = entry

	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	for i := 0; i < m; i++ {
		idom[vertex[i]] = dom[vertex[i]]
	}
	return idom
}
