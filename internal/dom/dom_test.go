package dom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph builds a connected-ish digraph over n nodes with node 0 as
// entry; every node except the entry gets at least one predecessor from a
// lower-numbered node, so all nodes are reachable, plus random extra
// edges (including back edges).
func randomGraph(r *rand.Rand, n int) [][]int {
	preds := make([][]int, n)
	for v := 1; v < n; v++ {
		preds[v] = append(preds[v], r.Intn(v))
	}
	extra := r.Intn(2 * n)
	for i := 0; i < extra; i++ {
		from := r.Intn(n)
		to := r.Intn(n)
		if to == 0 {
			continue
		}
		preds[to] = append(preds[to], from)
	}
	return preds
}

// TestIterativeMatchesLengauerTarjan is the cross-check property: the two
// independent dominator algorithms must agree on every random flow graph.
func TestIterativeMatchesLengauerTarjan(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(sizeRaw%40) + 2
		preds := randomGraph(r, n)
		pf := func(v int) []int { return preds[v] }
		a := Compute(n, 0, pf)
		b := ComputeLT(n, 0, pf)
		for v := 0; v < n; v++ {
			if a[v] != b[v] {
				t.Logf("seed %d n %d: node %d: iterative %d, LT %d", seed, n, v, a[v], b[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
	preds := [][]int{nil, {0}, {0}, {1, 2}}
	idom := Compute(4, 0, func(v int) []int { return preds[v] })
	want := []int{0, 0, 0, 0}
	for v, w := range want {
		if idom[v] != w {
			t.Errorf("idom[%d] = %d, want %d", v, idom[v], w)
		}
	}
}

func TestDominatorsChainAndLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 3, back edge 3 -> 1, exit 2 -> 4
	preds := [][]int{nil, {0, 3}, {1}, {2}, {2}}
	idom := Compute(5, 0, func(v int) []int { return preds[v] })
	want := []int{0, 0, 1, 2, 2}
	for v, w := range want {
		if idom[v] != w {
			t.Errorf("idom[%d] = %d, want %d", v, idom[v], w)
		}
	}
}

func TestUnreachableNodes(t *testing.T) {
	// Node 2 unreachable from entry.
	preds := [][]int{nil, {0}, {2}}
	idom := Compute(3, 0, func(v int) []int { return preds[v] })
	if idom[2] != -1 {
		t.Errorf("unreachable node got idom %d", idom[2])
	}
	lt := ComputeLT(3, 0, func(v int) []int { return preds[v] })
	if lt[2] != -1 {
		t.Errorf("LT: unreachable node got idom %d", lt[2])
	}
}

// TestDominanceProperty checks the defining property on random graphs:
// removing idom(v) from the graph disconnects v from the entry.
func TestDominanceProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(30) + 3
		preds := randomGraph(r, n)
		idom := Compute(n, 0, func(v int) []int { return preds[v] })
		succs := make([][]int, n)
		for v := 0; v < n; v++ {
			for _, p := range preds[v] {
				succs[p] = append(succs[p], v)
			}
		}
		reachableWithout := func(blocked int) []bool {
			seen := make([]bool, n)
			if blocked == 0 {
				return seen
			}
			stack := []int{0}
			seen[0] = true
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, s := range succs[v] {
					if s != blocked && !seen[s] {
						seen[s] = true
						stack = append(stack, s)
					}
				}
			}
			return seen
		}
		for v := 1; v < n; v++ {
			if idom[v] < 0 || idom[v] == v {
				continue
			}
			if reachableWithout(idom[v])[v] {
				t.Fatalf("trial %d: node %d reachable without its idom %d", trial, v, idom[v])
			}
		}
	}
}
