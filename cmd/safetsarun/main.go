// Command safetsarun is the code consumer: it loads a SafeTSA
// distribution unit (decoding it against the context-bounded alphabets,
// which makes ill-formed references inexpressible), runs the residual
// link verification, and executes static main.
//
//	safetsarun [-engine prepared|reference] unit.tsa
//
// The default engine is the prepared register machine (load-time
// operand resolution); -engine=reference selects the direct CST
// evaluator instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

func main() {
	maxSteps := flag.Int64("maxsteps", 0, "abort after this many executed instructions (0 = unlimited)")
	engine := flag.String("engine", driver.EnginePrepared,
		"execution engine: prepared (register machine) or reference (CST evaluator)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: safetsarun unit.tsa")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := wire.DecodeModule(data)
	if err != nil {
		fatal(err)
	}
	out, err := driver.RunModuleEngine(context.Background(), mod, *maxSteps, *engine)
	fmt.Print(out)
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsarun:", err)
	os.Exit(1)
}
