// Command safetsarun is the code consumer: it loads a SafeTSA
// distribution unit (decoding it against the context-bounded alphabets,
// which makes ill-formed references inexpressible), runs the residual
// link verification, and executes static main.
//
//	safetsarun unit.tsa
package main

import (
	"flag"
	"fmt"
	"os"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

func main() {
	maxSteps := flag.Int64("maxsteps", 0, "abort after this many executed instructions (0 = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: safetsarun unit.tsa")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	mod, err := wire.DecodeModule(data)
	if err != nil {
		fatal(err)
	}
	out, err := driver.RunModule(mod, *maxSteps)
	fmt.Print(out)
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsarun:", err)
	os.Exit(1)
}
