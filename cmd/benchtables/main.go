// Command benchtables regenerates the paper's evaluation artifacts:
//
//	benchtables -table fig5    # Figure 5: sizes and instruction counts
//	benchtables -table fig6    # Figure 6: checks before/after optimization
//	benchtables -claims        # section 7/8 prose claims, paper vs measured
//	benchtables -all           # everything
//	benchtables -json out.json # every table cell + claims + per-stage
//	                           # latency histogram summaries + the
//	                           # three-way reference/prepared/compiled
//	                           # run comparison + the warm-vs-cold
//	                           # session-pool comparison + the
//	                           # interprocedural-tier comparison as JSON
//	                           # ("-" = stdout)
package main

import (
	"flag"
	"fmt"
	"os"

	"safetsa/internal/bench"
)

func main() {
	table := flag.String("table", "", "table to print: fig5, fig6, or wire")
	claims := flag.Bool("claims", false, "check the prose claims")
	all := flag.Bool("all", false, "print every table and the claims")
	experiments := flag.Bool("experiments", false, "emit the EXPERIMENTS.md body (Markdown)")
	jsonOut := flag.String("json", "", "write the tables and claims as JSON to this file (\"-\" = stdout)")
	flag.Parse()

	rows, timings, err := bench.MeasureAllTimed()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		rc, err := bench.MeasureRunComparison()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		wp, err := bench.MeasureWarmPool()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		mo, err := bench.MeasureModuleOpt()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		wc, err := bench.MeasureWire(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		data, err := bench.FormatJSONTimed(rows, timings, rc, wp, mo, wc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		return
	}
	if *experiments {
		fmt.Print(bench.FormatExperiments(rows))
		return
	}
	printed := false
	if *all || *table == "fig5" {
		fmt.Println(bench.FormatFig5(rows))
		printed = true
	}
	if *all || *table == "fig6" {
		fmt.Println(bench.FormatFig6(rows))
		printed = true
	}
	if *all || *table == "wire" {
		wc, err := bench.MeasureWire(0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Println(bench.FormatWire(wc))
		printed = true
	}
	if *all || *claims {
		fmt.Println(bench.FormatClaims(rows))
		printed = true
	}
	if !printed {
		fmt.Println(bench.FormatFig5(rows))
		fmt.Println(bench.FormatFig6(rows))
		fmt.Println(bench.FormatClaims(rows))
	}
}
