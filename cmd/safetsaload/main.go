// Command safetsaload replays mixed compile/run traffic against a
// running safetsad (or a fleet of them) and reports client-observed
// latency percentiles per stage as a safetsa-bench-v8 JSON snapshot.
//
//	safetsaload -targets http://h1:8743,http://h2:8743 \
//	    [-workers 8] [-duration 10s | -requests N] [-units 16] \
//	    [-tenants 1] [-run-fraction 0.8] [-zipf 1.2] [-seed 1] \
//	    [-maxsteps 1000000] [-maxallocs N] \
//	    [-engine prepared|compiled|reference] [-o report.json]
//
// An invalid flag combination (negative worker count, zipf skew outside
// (1, 64], ...) is rejected before any traffic is sent: the process
// prints the offending field and exits nonzero.
//
// The replay first warms the unit universe (one compile per distinct
// program), then drives the configured worker count with zipfian key
// skew — a few hot units dominating run traffic, compiles trickling over
// the tail — the access pattern a mobile-code distribution fleet
// actually sees. With -tenants N, run traffic is spread over N tenant
// identities ("tenant-0".."tenant-N-1") and the report digests run
// latency per tenant; 429 admission rejections are counted as throttled,
// not errors. The report carries request/throttle/error counters, the
// guest step/alloc drain totals the servers reported (budget parity,
// observable from outside), and the compile/run latency digests (count,
// total, p50/p90/p99).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"safetsa/internal/bench"
)

func main() {
	targets := flag.String("targets", "http://localhost:8743",
		"comma-separated safetsad base URLs to spray traffic over")
	workers := flag.Int("workers", 8, "concurrent client workers")
	duration := flag.Duration("duration", 10*time.Second, "timed-phase length (ignored when -requests is set)")
	requests := flag.Int("requests", 0, "fixed request quota instead of -duration (0 = duration-bounded)")
	units := flag.Int("units", 16, "distinct programs in the key universe")
	runFraction := flag.Float64("run-fraction", 0.8, "probability a draw is a run (rest are compiles)")
	zipf := flag.Float64("zipf", 1.2, "zipfian skew exponent over the unit universe (>1)")
	seed := flag.Int64("seed", 1, "replay RNG seed")
	maxSteps := flag.Int64("maxsteps", 1_000_000, "per-run step budget sent with run requests")
	maxAllocs := flag.Int64("maxallocs", 0, "per-run allocation budget sent with run requests (0 = server cap only)")
	tenants := flag.Int("tenants", 1, "distinct tenant identities to spread run traffic over")
	engine := flag.String("engine", "", "execution engine override sent with run requests: prepared, compiled, or reference (empty = server default)")
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	var urls []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimSuffix(t, "/"))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := bench.RunLoad(ctx, bench.LoadConfig{
		Targets:     urls,
		Workers:     *workers,
		Duration:    *duration,
		Requests:    *requests,
		Units:       *units,
		RunFraction: *runFraction,
		ZipfS:       *zipf,
		Seed:        *seed,
		MaxSteps:    *maxSteps,
		MaxAllocs:   *maxAllocs,
		Tenants:     *tenants,
		Engine:      *engine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetsaload:", err)
		os.Exit(1)
	}

	summarize(res)

	data, err := bench.FormatJSONLoad(res)
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetsaload:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "safetsaload:", err)
		os.Exit(1)
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "safetsaload: %d requests failed (first: %s)\n",
			res.Errors, res.ErrorSamples[0])
		os.Exit(1)
	}
}

// summarize prints the human-readable digest to stderr so stdout stays
// pure JSON for piping.
func summarize(res *bench.LoadResult) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(os.Stderr, "safetsaload: %d requests in %v (%.0f req/s) over %d target(s): %d runs, %d compiles (%d cached), %d throttled, %d errors\n",
		res.Requests, res.Elapsed.Round(time.Millisecond),
		float64(res.Requests)/res.Elapsed.Seconds(),
		res.Targets, res.Runs, res.Compiles, res.CachedCompiles, res.Throttled, res.Errors)
	fmt.Fprintf(os.Stderr, "safetsaload: guest drain %d steps, %d allocs over %d accepted runs\n",
		res.GuestSteps, res.GuestAllocs, res.Runs)
	run := res.RunHist.Summary()
	cmp := res.CompileHist.Summary()
	fmt.Fprintf(os.Stderr, "safetsaload: run     p50 %.2fms  p90 %.2fms  p99 %.2fms  (%d samples)\n",
		ms(run.P50Nanos), ms(run.P90Nanos), ms(run.P99Nanos), run.Count)
	fmt.Fprintf(os.Stderr, "safetsaload: compile p50 %.2fms  p90 %.2fms  p99 %.2fms  (%d samples)\n",
		ms(cmp.P50Nanos), ms(cmp.P90Nanos), ms(cmp.P99Nanos), cmp.Count)
	if len(res.TenantRunHists) > 1 {
		for i, h := range res.TenantRunHists {
			s := h.Summary()
			fmt.Fprintf(os.Stderr, "safetsaload: tenant-%d run p50 %.2fms  p99 %.2fms  (%d samples)\n",
				i, ms(s.P50Nanos), ms(s.P99Nanos), s.Count)
		}
	}
}
