// Command tjc is the baseline compiler: TJ source to the JVM-style
// stack-bytecode class files the paper compares SafeTSA against.
//
//	tjc [-run] [-dis] [-verify] file.tj...
package main

import (
	"flag"
	"fmt"
	"os"

	"safetsa/internal/driver"
)

func main() {
	run := flag.Bool("run", false, "execute static main after compiling")
	dis := flag.Bool("dis", false, "print the disassembly")
	verify := flag.Bool("verify", true, "run the dataflow bytecode verifier")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tjc [-run] [-dis] file.tj...")
		os.Exit(2)
	}
	files := make(map[string]string)
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[name] = string(src)
	}
	prog, err := driver.Frontend(files)
	if err != nil {
		fatal(err)
	}
	p, err := driver.CompileBytecode(prog)
	if err != nil {
		fatal(err)
	}
	if *verify {
		if err := p.Verify(); err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
	}
	for _, cf := range p.Classes {
		fmt.Fprintf(os.Stderr, "%s: %d instructions, %d bytes\n",
			cf.Name, cf.NumInstrs(), cf.SerializedSize())
		if *dis {
			fmt.Print(cf.Disassemble())
		}
	}
	if *run {
		out, err := driver.RunBytecode(p, 0)
		fmt.Print(out)
		if err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tjc:", err)
	os.Exit(1)
}
