// Command safetsac is the code producer: it compiles TJ source files to a
// SafeTSA distribution unit.
//
//	safetsac [-O | -O2] [-o out.tsa] [-dump] file.tj...
//
// -O runs the intraprocedural producer-side optimizations (constant
// propagation, CSE with the Mem variable, DCE / check elimination)
// before encoding. -O2 adds the interprocedural tier on top: CHA/RTA
// devirtualization of monomorphic xdispatch sites, inlining of small
// non-recursive callees, and flow-based null/bounds-check elimination.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"safetsa/internal/driver"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

func main() {
	optimize := flag.Bool("O", false, "run intraprocedural producer-side optimizations")
	moduleOpt := flag.Bool("O2", false, "run the interprocedural optimizer tier (implies -O)")
	out := flag.String("o", "out.tsa", "output distribution unit")
	dump := flag.Bool("dump", false, "print the SafeTSA form instead of writing the unit")
	stats := flag.Bool("stats", false, "print optimization statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: safetsac [-O | -O2] [-o out.tsa] file.tj...")
		os.Exit(2)
	}

	files := make(map[string]string)
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[name] = string(src)
	}
	mod, err := driver.CompileTSASource(files)
	if err != nil {
		fatal(err)
	}
	if *optimize || *moduleOpt {
		st, err := driver.OptimizeModuleOptions(context.Background(), mod, opt.Options{ModuleLevel: *moduleOpt})
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr,
				"instructions %d -> %d, phis %d -> %d, null checks %d -> %d, array checks %d -> %d\n",
				st.InstrsBefore, st.InstrsAfter, st.PhisBefore, st.PhisAfter,
				st.NullChecksBefore, st.NullChecksAfter,
				st.ArrayChecksBefore, st.ArrayChecksAfter)
			if *moduleOpt {
				fmt.Fprintf(os.Stderr,
					"devirtualized %d, inlined %d, checks elided %d, exception edges pruned %d\n",
					st.Devirtualized, st.Inlined, st.ChecksElided, st.ExcEdgesPruned)
			}
		}
	}
	if *dump {
		fmt.Print(mod.Dump())
		return
	}
	data := wire.EncodeModule(mod)
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes, %d instructions\n", *out, len(data), mod.NumInstrs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsac:", err)
	os.Exit(1)
}
