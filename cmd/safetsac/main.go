// Command safetsac is the code producer: it compiles TJ source files to a
// SafeTSA distribution unit.
//
//	safetsac [-O] [-o out.tsa] [-dump] file.tj...
//
// -O runs the producer-side optimizations (constant propagation, CSE with
// the Mem variable, DCE / check elimination) before encoding.
package main

import (
	"flag"
	"fmt"
	"os"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

func main() {
	optimize := flag.Bool("O", false, "run producer-side optimizations")
	out := flag.String("o", "out.tsa", "output distribution unit")
	dump := flag.Bool("dump", false, "print the SafeTSA form instead of writing the unit")
	stats := flag.Bool("stats", false, "print optimization statistics")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: safetsac [-O] [-o out.tsa] file.tj...")
		os.Exit(2)
	}

	files := make(map[string]string)
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[name] = string(src)
	}
	mod, err := driver.CompileTSASource(files)
	if err != nil {
		fatal(err)
	}
	if *optimize {
		st, err := driver.OptimizeModule(mod)
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr,
				"instructions %d -> %d, phis %d -> %d, null checks %d -> %d, array checks %d -> %d\n",
				st.InstrsBefore, st.InstrsAfter, st.PhisBefore, st.PhisAfter,
				st.NullChecksBefore, st.NullChecksAfter,
				st.ArrayChecksBefore, st.ArrayChecksAfter)
		}
	}
	if *dump {
		fmt.Print(mod.Dump())
		return
	}
	data := wire.EncodeModule(mod)
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: %d bytes, %d instructions\n", *out, len(data), mod.NumInstrs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsac:", err)
	os.Exit(1)
}
