// Command safetsac is the code producer: it compiles TJ source files to a
// SafeTSA distribution unit.
//
//	safetsac [-O | -O2] [-wire 1|2] [-dict FILE] [-train-dict FILE]
//	         [-o out.tsa] [-dump] file.tj...
//
// -O runs the intraprocedural producer-side optimizations (constant
// propagation, CSE with the Mem variable, DCE / check elimination)
// before encoding. -O2 adds the interprocedural tier on top: CHA/RTA
// devirtualization of monomorphic xdispatch sites, inlining of small
// non-recursive callees, and flow-based null/bounds-check elimination.
//
// -wire selects the wire format: 1 is the fixed-code v1 stream, 2 the
// adaptive range-coded v2 stream. -dict supplies a shared dictionary
// (an STSD file) for -wire 2; the consumer must hold the same
// dictionary to decode. -train-dict trains a dictionary over the
// compiled unit and writes it to the given path before encoding.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

func main() {
	optimize := flag.Bool("O", false, "run intraprocedural producer-side optimizations")
	moduleOpt := flag.Bool("O2", false, "run the interprocedural optimizer tier (implies -O)")
	out := flag.String("o", "out.tsa", "output distribution unit")
	dump := flag.Bool("dump", false, "print the SafeTSA form instead of writing the unit")
	stats := flag.Bool("stats", false, "print optimization statistics")
	wireVersion := flag.Int("wire", 1, "wire format version: 1 fixed-code, 2 adaptive")
	dictPath := flag.String("dict", "", "shared dictionary (STSD file) to encode against (-wire 2 only)")
	trainDict := flag.String("train-dict", "", "train a shared dictionary over the compiled unit and write it here")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: safetsac [-O | -O2] [-wire 1|2] [-o out.tsa] file.tj...")
		os.Exit(2)
	}
	if *wireVersion != 1 && *wireVersion != 2 {
		fatal(fmt.Errorf("-wire must be 1 or 2, got %d", *wireVersion))
	}
	if *dictPath != "" && *wireVersion != 2 {
		fatal(fmt.Errorf("-dict requires -wire 2"))
	}

	files := make(map[string]string)
	for _, name := range flag.Args() {
		src, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		files[name] = string(src)
	}
	mod, err := driver.CompileTSASource(files)
	if err != nil {
		fatal(err)
	}
	if *optimize || *moduleOpt {
		st, err := driver.OptimizeModuleOptions(context.Background(), mod, opt.Options{ModuleLevel: *moduleOpt})
		if err != nil {
			fatal(err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr,
				"instructions %d -> %d, phis %d -> %d, null checks %d -> %d, array checks %d -> %d\n",
				st.InstrsBefore, st.InstrsAfter, st.PhisBefore, st.PhisAfter,
				st.NullChecksBefore, st.NullChecksAfter,
				st.ArrayChecksBefore, st.ArrayChecksAfter)
			if *moduleOpt {
				fmt.Fprintf(os.Stderr,
					"devirtualized %d, inlined %d, checks elided %d, exception edges pruned %d\n",
					st.Devirtualized, st.Inlined, st.ChecksElided, st.ExcEdgesPruned)
			}
		}
	}
	if *dump {
		fmt.Print(mod.Dump())
		return
	}
	if *trainDict != "" {
		d := wire.TrainDictionary([]*core.Module{mod})
		if d == nil {
			fatal(fmt.Errorf("unit has no repeated strings to train a dictionary on"))
		}
		if err := os.WriteFile(*trainDict, d.Bytes(), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: dictionary, %d bytes\n", *trainDict, len(d.Bytes()))
	}
	var data []byte
	switch *wireVersion {
	case 2:
		var dict *wire.Dictionary
		if *dictPath != "" {
			raw, err := os.ReadFile(*dictPath)
			if err != nil {
				fatal(err)
			}
			if dict, err = wire.ParseDictionary(raw); err != nil {
				fatal(err)
			}
		}
		data = wire.EncodeModuleV2(mod, dict)
	default:
		data = wire.EncodeModule(mod)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: wire v%d, %d bytes, %d instructions\n", *out, *wireVersion, len(data), mod.NumInstrs())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsac:", err)
	os.Exit(1)
}
