// Command safetsad is the mobile-code distribution daemon: it serves the
// codeserver HTTP API, compiling TJ source sets into content-addressed
// SafeTSA distribution units (compiled once per key, cached in memory and
// optionally on disk) and executing them in isolated interpreter
// sessions.
//
//	safetsad [-addr :8743] [-cachedir DIR] [-workers N]
//	         [-units N] [-modules N] [-maxsteps N] [-stagetimeout D]
//
// API:
//
//	POST /compile       {"files": {"Main.tj": "..."}, "optimize": true}
//	GET  /unit/{hash}   download the encoded distribution unit
//	POST /run/{hash}    {"max_steps": 1000000}
//	GET  /stats         cache and latency metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safetsa/internal/codeserver"
)

func main() {
	addr := flag.String("addr", ":8743", "listen address")
	cacheDir := flag.String("cachedir", "", "on-disk unit store (empty = memory only)")
	workers := flag.Int("workers", 0, "concurrent producer pipelines (0 = GOMAXPROCS)")
	units := flag.Int("units", 1024, "max encoded units cached in memory")
	modules := flag.Int("modules", 256, "max decoded modules cached")
	maxSteps := flag.Int64("maxsteps", 0, "hard per-run step budget (0 = unlimited)")
	stageTimeout := flag.Duration("stagetimeout", 30*time.Second, "per-stage compile timeout (0 = none)")
	flag.Parse()

	srv, err := codeserver.New(codeserver.Config{
		CacheDir:     *cacheDir,
		Workers:      *workers,
		StageTimeout: *stageTimeout,
		MaxUnits:     *units,
		MaxModules:   *modules,
		MaxSteps:     *maxSteps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Print("safetsad: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}()

	log.Printf("safetsad: serving on %s (cachedir=%q)", *addr, *cacheDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}
}
