// Command safetsad is the mobile-code distribution daemon: it serves the
// codeserver HTTP API, compiling TJ source sets into content-addressed
// SafeTSA distribution units (compiled once per key, cached in memory and
// optionally on disk) and executing them in isolated interpreter
// sessions.
//
//	safetsad [-addr :8743] [-cachedir DIR] [-workers N]
//	         [-units N] [-modules N] [-maxsteps N] [-stagetimeout D]
//	         [-traces N] [-debug-addr ADDR] [-engine prepared|reference]
//
// API:
//
//	POST /compile       {"files": {"Main.tj": "..."}, "optimize": true}
//	GET  /unit/{hash}   download the encoded distribution unit
//	POST /run/{hash}    {"max_steps": 1000000, "engine": "reference"}
//	GET  /stats         cache and latency metrics (JSON)
//	GET  /metrics       Prometheus text format (per-stage latency histograms)
//	GET  /debug/traces  recent request traces (JSON ring buffer)
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ on that address only — profiling stays off the public
// port, so exposing the API does not expose the profiler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"safetsa/internal/codeserver"
)

func main() {
	addr := flag.String("addr", ":8743", "listen address")
	cacheDir := flag.String("cachedir", "", "on-disk unit store (empty = memory only)")
	workers := flag.Int("workers", 0, "concurrent producer pipelines (0 = GOMAXPROCS)")
	units := flag.Int("units", 1024, "max encoded units cached in memory")
	modules := flag.Int("modules", 256, "max decoded modules cached")
	maxSteps := flag.Int64("maxsteps", 0, "hard per-run step budget (0 = unlimited)")
	stageTimeout := flag.Duration("stagetimeout", 30*time.Second, "per-stage compile timeout (0 = none)")
	traces := flag.Int("traces", 64, "request traces retained for /debug/traces")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	engine := flag.String("engine", "",
		"default execution engine: prepared or reference (empty = prepared); per-request \"engine\" overrides")
	flag.Parse()

	srv, err := codeserver.New(codeserver.Config{
		CacheDir:     *cacheDir,
		Workers:      *workers,
		StageTimeout: *stageTimeout,
		MaxUnits:     *units,
		MaxModules:   *modules,
		MaxSteps:     *maxSteps,
		Traces:       *traces,
		Engine:       *engine,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		ds := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("safetsad: pprof on %s/debug/pprof/", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("safetsad: debug listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(shCtx)
		}()
	}

	go func() {
		<-ctx.Done()
		log.Print("safetsad: shutting down")
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
	}()

	log.Printf("safetsad: serving on %s (cachedir=%q)", *addr, *cacheDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}
}

// debugMux wires the pprof handlers onto an explicit mux instead of
// importing net/http/pprof for its DefaultServeMux side effect — the
// daemon never serves DefaultServeMux, so the explicit wiring is the
// only way the profiler becomes reachable.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
