// Command safetsad is the mobile-code distribution daemon: it serves the
// codeserver HTTP API, compiling TJ source sets into content-addressed
// SafeTSA distribution units (compiled once per key, cached in memory and
// optionally on disk) and executing them in isolated interpreter
// sessions.
//
//	safetsad [-addr :8743] [-cachedir DIR] [-workers N]
//	         [-units N] [-modules N] [-maxsteps N] [-maxallocs N]
//	         [-run-timeout D] [-tenant-inflight N] [-pool-units N]
//	         [-stagetimeout D] [-traces N] [-debug-addr ADDR]
//	         [-engine prepared|compiled|reference] [-module-opt]
//	         [-wire-version 1|2] [-drain D]
//	         [-node NAME -peers NAME=URL,... [-vnodes N] [-gossip D]
//	          [-hot-threshold N] [-hot-window D] [-replicas N]]
//
// API:
//
//	POST /compile       {"files": {"Main.tj": "..."}, "optimize": true}
//	GET  /unit/{hash}   download the encoded distribution unit
//	POST /run/{hash}    {"max_steps": 1000000, "max_allocs": 1048576,
//	                     "engine": "reference", "tenant": "acme"}
//	POST /run-stream    raw wire unit in the body; decoded, verified, and
//	                    executed function-by-function as bytes arrive
//	                    (?max_steps=N&max_allocs=N, reference engine)
//	GET  /stats         cache and latency metrics (JSON)
//	GET  /metrics       Prometheus text format (per-stage latency histograms)
//	GET  /debug/traces  recent request traces (JSON ring buffer)
//
// Every run is budgeted: -maxsteps / -maxallocs cap the per-run step and
// allocation budgets (request asks above a cap fold down to it),
// -run-timeout bounds wall clock, and -tenant-inflight bounds each
// tenant's concurrent runs — beyond it the server answers 429 with
// Retry-After: 1. Tenant identity comes from the request body or the
// X-Safetsa-Tenant header (default "anon"). -pool-units sizes the
// warm-session pool of post-static-init snapshots that serves repeat
// runs of a unit without replaying its initializers (negative =
// disabled).
//
// Cluster mode (-node plus -peers) turns the daemon into one member of a
// consistent-hash sharded fleet: compiles route to each unit's ring
// owner, store misses fill from peers (re-verified locally before
// caching — peers are never trusted), hot units replicate to ring
// successors, and GET /stats reports a gossiped fleet view. The /peer/*
// routes are the fleet-internal API.
//
// On SIGTERM/SIGINT the daemon drains: it stops accepting connections,
// interrupts in-flight guest runs (each still receives its complete HTTP
// response, with the output produced before the interrupt), and exits
// once no runs remain in flight or the -drain deadline expires.
//
// With -debug-addr set, a second listener serves net/http/pprof under
// /debug/pprof/ on that address only — profiling stays off the public
// port, so exposing the API does not expose the profiler.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"safetsa/internal/cluster"
	"safetsa/internal/codeserver"
)

func main() {
	addr := flag.String("addr", ":8743", "listen address")
	cacheDir := flag.String("cachedir", "", "on-disk unit store (empty = memory only)")
	workers := flag.Int("workers", 0, "concurrent producer pipelines (0 = GOMAXPROCS)")
	units := flag.Int("units", 1024, "max encoded units cached in memory")
	modules := flag.Int("modules", 256, "max decoded modules cached")
	maxSteps := flag.Int64("maxsteps", 0, "hard per-run step budget (0 = unlimited)")
	maxAllocs := flag.Int64("maxallocs", 0, "hard per-run allocation budget (0 = unlimited)")
	runTimeout := flag.Duration("run-timeout", 0, "wall-clock deadline per guest run (0 = none)")
	tenantInFlight := flag.Int("tenant-inflight", 0, "max concurrent runs per tenant, 429 beyond (0 = unlimited)")
	poolUnits := flag.Int("pool-units", 0, "warm-session pool capacity in snapshots (0 = default 256, negative = disabled)")
	stageTimeout := flag.Duration("stagetimeout", 30*time.Second, "per-stage compile timeout (0 = none)")
	traces := flag.Int("traces", 64, "request traces retained for /debug/traces")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	engine := flag.String("engine", "",
		"default execution engine: prepared, compiled, or reference (empty = prepared); per-request \"engine\" overrides")
	moduleOpt := flag.Bool("module-opt", false,
		"upgrade optimizing compiles to the interprocedural tier (devirtualization, inlining, check elimination)")
	wireVersion := flag.Int("wire-version", 0,
		"wire format for newly encoded units: 1 fixed-code, 2 adaptive (0 = v1); part of the cache key")
	drain := flag.Duration("drain", 10*time.Second, "max time to drain in-flight runs on shutdown")

	node := flag.String("node", "", "fleet member name (enables cluster mode with -peers)")
	peers := flag.String("peers", "",
		"comma-separated fleet membership as NAME=URL pairs, including this node (its URL may be omitted)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per fleet member on the placement ring (0 = default)")
	gossip := flag.Duration("gossip", 5*time.Second, "fleet stats gossip interval (0 = disabled)")
	hotThreshold := flag.Int("hot-threshold", 0,
		"runs of one unit within -hot-window that trigger replication (0 = disabled)")
	hotWindow := flag.Duration("hot-window", 10*time.Second, "hot-unit run-rate window")
	replicas := flag.Int("replicas", 2, "fleet members holding each hot unit (owner included)")
	flag.Parse()

	srv, err := codeserver.New(codeserver.Config{
		CacheDir:          *cacheDir,
		Workers:           *workers,
		StageTimeout:      *stageTimeout,
		MaxUnits:          *units,
		MaxModules:        *modules,
		MaxSteps:          *maxSteps,
		MaxAllocs:         *maxAllocs,
		RunTimeout:        *runTimeout,
		TenantMaxInFlight: *tenantInFlight,
		PoolUnits:         *poolUnits,
		Traces:            *traces,
		Engine:            *engine,
		ModuleOpt:         *moduleOpt,
		WireVersion:       *wireVersion,
		NodeName:          *node,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}

	handler := srv.Handler()
	var member *cluster.Node
	if *node != "" || *peers != "" {
		peerMap, err := parsePeers(*peers, *node)
		if err != nil {
			fmt.Fprintln(os.Stderr, "safetsad:", err)
			os.Exit(1)
		}
		member, err = cluster.NewNode(srv, cluster.Config{
			Self:           *node,
			Peers:          peerMap,
			VNodes:         *vnodes,
			HotThreshold:   *hotThreshold,
			HotWindow:      *hotWindow,
			Replicas:       *replicas,
			GossipInterval: *gossip,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "safetsad:", err)
			os.Exit(1)
		}
		member.Start()
		handler = member.Handler()
		log.Printf("safetsad: cluster mode: node %s in fleet %v", *node, member.Ring().Nodes())
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		ds := &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("safetsad: pprof on %s/debug/pprof/", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("safetsad: debug listener: %v", err)
			}
		}()
		go func() {
			<-ctx.Done()
			shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = ds.Shutdown(shCtx)
		}()
	}

	// Graceful drain: interrupt in-flight guest runs (they finish their
	// HTTP exchanges with the output produced so far) while the listener
	// stops accepting; both drains share the -drain deadline.
	go func() {
		<-ctx.Done()
		log.Printf("safetsad: draining (deadline %v)", *drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			log.Printf("safetsad: run drain: %v", err)
		}
		if member != nil {
			member.Close()
		}
		_ = hs.Shutdown(shCtx)
	}()

	log.Printf("safetsad: serving on %s (cachedir=%q)", *addr, *cacheDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "safetsad:", err)
		os.Exit(1)
	}
}

// parsePeers turns "a=http://h1,b=http://h2,c=http://h3" into the fleet
// membership map. The self entry may omit its URL ("a=" or just "a") —
// a node never dials itself.
func parsePeers(spec, self string) (map[string]string, error) {
	if self == "" {
		return nil, errors.New("cluster mode needs -node")
	}
	if spec == "" {
		return nil, errors.New("cluster mode needs -peers")
	}
	peers := make(map[string]string)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, url, _ := strings.Cut(entry, "=")
		if name == "" {
			return nil, fmt.Errorf("bad -peers entry %q", entry)
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate -peers entry %q", name)
		}
		if url == "" && name != self {
			return nil, fmt.Errorf("-peers entry %q needs a URL", name)
		}
		peers[name] = strings.TrimSuffix(url, "/")
	}
	if _, ok := peers[self]; !ok {
		return nil, fmt.Errorf("-peers must include this node (%q)", self)
	}
	return peers, nil
}

// debugMux wires the pprof handlers onto an explicit mux instead of
// importing net/http/pprof for its DefaultServeMux side effect — the
// daemon never serves DefaultServeMux, so the explicit wiring is the
// only way the profiler becomes reachable.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
