// Command safetsadump disassembles a SafeTSA distribution unit into the
// textual form of the paper's Figure 4 (type-separated instructions with
// (l-r) operand references inside the Control Structure Tree).
//
//	safetsadump unit.tsa
package main

import (
	"fmt"
	"os"

	"safetsa/internal/wire"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: safetsadump unit.tsa")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fatal(err)
	}
	mod, err := wire.DecodeModule(data)
	if err != nil {
		fatal(err)
	}
	tt := mod.Types
	fmt.Printf("types: %d (%d implicit)\n", len(tt.ByID)-1, tt.ImplicitLen-1)
	for _, cd := range mod.Classes {
		fmt.Printf("class %s extends %s (%d slots, %d statics, %d dispatch slots)\n",
			tt.Describe(cd.Type), tt.Describe(cd.Super),
			cd.NumSlots, cd.NumStatics, len(cd.VTable))
	}
	fmt.Println()
	fmt.Print(mod.Dump())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsadump:", err)
	os.Exit(1)
}
