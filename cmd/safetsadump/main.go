// Command safetsadump disassembles mobile-code containers. For a SafeTSA
// distribution unit it prints the textual form of the paper's Figure 4
// (type-separated instructions with (l-r) operand references inside the
// Control Structure Tree); with -jbc it compiles TJ source through the
// baseline pipeline and prints the class-file disassembly (the baseline's
// on-disk encoding drops short-form immediates, so .jbc dumps always go
// through the compiler rather than a byte parser).
//
//	safetsadump unit.tsa
//	safetsadump -jbc file.tj...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

func main() {
	jbc := flag.Bool("jbc", false, "treat arguments as TJ source and dump the baseline bytecode")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: safetsadump unit.tsa | safetsadump -jbc file.tj...")
		os.Exit(2)
	}

	if *jbc {
		files := make(map[string]string)
		for _, name := range flag.Args() {
			src, err := os.ReadFile(name)
			if err != nil {
				fatal(err)
			}
			files[name] = string(src)
		}
		out, err := dumpJBCSource(files)
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: safetsadump unit.tsa")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	out, err := dumpTSA(data)
	if err != nil {
		fatal(err)
	}
	fmt.Print(out)
}

// dumpTSA decodes a distribution unit and renders the Figure-4-style
// disassembly.
func dumpTSA(data []byte) (string, error) {
	mod, err := wire.DecodeModule(data)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	tt := mod.Types
	fmt.Fprintf(&sb, "types: %d (%d implicit)\n", len(tt.ByID)-1, tt.ImplicitLen-1)
	for _, cd := range mod.Classes {
		fmt.Fprintf(&sb, "class %s extends %s (%d slots, %d statics, %d dispatch slots)\n",
			tt.Describe(cd.Type), tt.Describe(cd.Super),
			cd.NumSlots, cd.NumStatics, len(cd.VTable))
	}
	sb.WriteString("\n")
	sb.WriteString(mod.Dump())
	return sb.String(), nil
}

// dumpJBCSource compiles TJ sources through the baseline pipeline and
// renders every class file's disassembly with its Figure-5 size line.
func dumpJBCSource(files map[string]string) (string, error) {
	prog, err := driver.Frontend(files)
	if err != nil {
		return "", err
	}
	p, err := driver.CompileBytecode(prog)
	if err != nil {
		return "", err
	}
	if err := p.Verify(); err != nil {
		return "", fmt.Errorf("verification failed: %w", err)
	}
	var sb strings.Builder
	for _, cf := range p.Classes {
		fmt.Fprintf(&sb, "%s: %d instructions, %d bytes\n",
			cf.Name, cf.NumInstrs(), cf.SerializedSize())
		sb.WriteString(cf.Disassemble())
	}
	return sb.String(), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "safetsadump:", err)
	os.Exit(1)
}
