package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The quickstart program (examples/quickstart): the paper's Figure 1-4
// worked example wrapped in a main.
func quickstartFiles(t *testing.T) map[string]string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "Quickstart.tj"))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{"Quickstart.tj": string(src)}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/safetsadump -update` to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file; if the change is intended, "+
			"regenerate with `go test ./cmd/safetsadump -update`.\ngot:\n%s", name, got)
	}
}

// TestGoldenTSADump pins the .tsa disassembly of the quickstart program:
// any change to the wire format, the decoder, or the printer shows up as
// a diff here.
func TestGoldenTSADump(t *testing.T) {
	mod, err := driver.CompileTSASource(quickstartFiles(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dumpTSA(wire.EncodeModule(mod))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quickstart.tsa.golden", got)
}

// TestGoldenJBCDump pins the baseline class-file disassembly of the same
// program.
func TestGoldenJBCDump(t *testing.T) {
	got, err := dumpJBCSource(quickstartFiles(t))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "quickstart.jbc.golden", got)
}
