module safetsa

go 1.22
