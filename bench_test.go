// Package safetsa's root benchmarks regenerate the paper's evaluation:
// one benchmark per table/figure plus the consumer-side cost comparisons
// of section 9. Custom metrics report the table cells (bytes,
// instructions, checks) alongside the usual ns/op.
//
//	go test -bench=. -benchmem
package safetsa

import (
	"testing"

	"safetsa/internal/bench"
	"safetsa/internal/bytecode"
	"safetsa/internal/core"
	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/lang/sema"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

// frontendAll parses and checks the whole corpus once.
func frontendAll(b *testing.B) []*sema.Program {
	b.Helper()
	var progs []*sema.Program
	for _, u := range corpus.Units() {
		p, err := driver.Frontend(u.Files)
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	return progs
}

// BenchmarkFigure5 produces the Figure 5 columns: it compiles the whole
// corpus to both formats and reports the aggregate sizes and instruction
// counts as metrics.
func BenchmarkFigure5(b *testing.B) {
	var bcBytes, bcInstrs, tsaBytes, tsaInstrs, optBytes, optInstrs float64
	for i := 0; i < b.N; i++ {
		bcBytes, bcInstrs, tsaBytes, tsaInstrs, optBytes, optInstrs = 0, 0, 0, 0, 0, 0
		rows, err := bench.MeasureAll()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			bcBytes += float64(r.BCSize)
			bcInstrs += float64(r.BCInstrs)
			tsaBytes += float64(r.TSASize)
			tsaInstrs += float64(r.TSAInstrs)
			optBytes += float64(r.TSAOptSize)
			optInstrs += float64(r.TSAOptInstrs)
		}
	}
	b.ReportMetric(bcBytes, "bytecode-bytes")
	b.ReportMetric(tsaBytes, "safetsa-bytes")
	b.ReportMetric(optBytes, "safetsa-opt-bytes")
	b.ReportMetric(bcInstrs, "bytecode-instrs")
	b.ReportMetric(tsaInstrs, "safetsa-instrs")
	b.ReportMetric(optInstrs, "safetsa-opt-instrs")
}

// BenchmarkFigure6 times the producer-side optimizer over the corpus and
// reports the aggregate check/phi eliminations of Figure 6.
func BenchmarkFigure6(b *testing.B) {
	progs := frontendAll(b)
	var phiB, phiA, nullB, nullA, arrB, arrA float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phiB, phiA, nullB, nullA, arrB, arrA = 0, 0, 0, 0, 0, 0
		for _, p := range progs {
			mod, err := driver.CompileTSA(p)
			if err != nil {
				b.Fatal(err)
			}
			st := opt.Optimize(mod)
			phiB += float64(st.PhisBefore)
			phiA += float64(st.PhisAfter)
			nullB += float64(st.NullChecksBefore)
			nullA += float64(st.NullChecksAfter)
			arrB += float64(st.ArrayChecksBefore)
			arrA += float64(st.ArrayChecksAfter)
		}
	}
	b.ReportMetric(phiB, "phi-before")
	b.ReportMetric(phiA, "phi-after")
	b.ReportMetric(nullB, "nullchk-before")
	b.ReportMetric(nullA, "nullchk-after")
	b.ReportMetric(arrB, "arrchk-before")
	b.ReportMetric(arrA, "arrchk-after")
}

// corpusModules compiles the corpus once for the consumer-side benches.
func corpusModules(b *testing.B, optimize bool) ([]*core.Module, []*bytecode.Program) {
	b.Helper()
	var mods []*core.Module
	var bcs []*bytecode.Program
	for _, p := range frontendAll(b) {
		mod, err := driver.CompileTSA(p)
		if err != nil {
			b.Fatal(err)
		}
		if optimize {
			if _, err := driver.OptimizeModule(mod); err != nil {
				b.Fatal(err)
			}
		}
		mods = append(mods, mod)
		bc, err := driver.CompileBytecode(p)
		if err != nil {
			b.Fatal(err)
		}
		bcs = append(bcs, bc)
	}
	return mods, bcs
}

// BenchmarkVerifySafeTSA measures the consumer-side verification SafeTSA
// needs: the structural/counter checks of the module verifier (section 9:
// "simple counters holding the numbers of defined values").
func BenchmarkVerifySafeTSA(b *testing.B) {
	mods, _ := corpusModules(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range mods {
			if err := m.Verify(core.VerifyOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkVerifyBytecode measures the baseline's dataflow verification —
// the "time consuming verification phase" the paper eliminates.
func BenchmarkVerifyBytecode(b *testing.B) {
	_, bcs := corpusModules(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range bcs {
			if err := p.Verify(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWireEncode/Decode measure the externalization round trip over
// the optimized corpus (section 7's three-phase symbol stream).
func BenchmarkWireEncode(b *testing.B) {
	mods, _ := corpusModules(b, true)
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, m := range mods {
			total += len(wire.EncodeModule(m))
		}
	}
	b.ReportMetric(float64(total), "bytes")
}

func BenchmarkWireDecode(b *testing.B) {
	mods, _ := corpusModules(b, true)
	var units [][]byte
	for _, m := range mods {
		units = append(units, wire.EncodeModule(m))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			if _, err := wire.DecodeModule(u); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkExecuteLinpackSafeTSA/Bytecode run the numeric workload on the
// two consumers over the shared runtime.
func BenchmarkExecuteLinpackSafeTSA(b *testing.B) {
	u, _ := corpus.ByName("Linpack")
	mod, _, err := driver.CompileTSASourceOpt(u.Files)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunModule(mod, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteLinpackBytecode(b *testing.B) {
	u, _ := corpus.ByName("Linpack")
	prog, err := driver.Frontend(u.Files)
	if err != nil {
		b.Fatal(err)
	}
	bc, err := driver.CompileBytecode(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.RunBytecode(bc, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFieldSensitiveMem compares the paper's measured
// configuration (single conservative Mem) against its proposed
// improvement (Mem partitioned by field name / element type, section 8's
// "simple form of field analysis") and reports the residual load counts.
func BenchmarkAblationFieldSensitiveMem(b *testing.B) {
	progs := frontendAll(b)
	var consLoads, partLoads float64
	countLoads := func(m *core.Module) (n int) {
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				blk.Instrs(func(in *core.Instr) {
					if in.Op == core.OpGetField || in.Op == core.OpGetElt {
						n++
					}
				})
			}
		}
		return n
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		consLoads, partLoads = 0, 0
		for _, p := range progs {
			m1, err := driver.CompileTSA(p)
			if err != nil {
				b.Fatal(err)
			}
			opt.Optimize(m1)
			consLoads += float64(countLoads(m1))

			m2, err := driver.CompileTSA(p)
			if err != nil {
				b.Fatal(err)
			}
			opt.OptimizeWithOptions(m2, opt.Options{FieldSensitiveMem: true})
			partLoads += float64(countLoads(m2))
		}
	}
	b.ReportMetric(consLoads, "loads-single-mem")
	b.ReportMetric(partLoads, "loads-field-mem")
}

// BenchmarkCompileSafeTSA measures the producer pipeline end to end
// (parse to optimized distribution unit) over the corpus.
func BenchmarkCompileSafeTSA(b *testing.B) {
	units := corpus.Units()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range units {
			mod, _, err := driver.CompileTSASourceOpt(u.Files)
			if err != nil {
				b.Fatal(err)
			}
			wire.EncodeModule(mod)
		}
	}
}
