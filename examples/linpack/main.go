// Linpack runs the paper's numeric workload end-to-end through both
// pipelines and reports the Figure 5/6 cells for its row: instruction
// counts, file sizes, and the check-elimination results that section 8
// highlights ("for those that do [manipulate arrays], we see a reduction
// ... in the number of array check instructions").
package main

import (
	"fmt"
	"log"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
	"safetsa/internal/wire"
)

func main() {
	u, ok := corpus.ByName("Linpack")
	if !ok {
		log.Fatal("Linpack missing from corpus")
	}
	prog, err := driver.Frontend(u.Files)
	if err != nil {
		log.Fatal(err)
	}

	bc, err := driver.CompileBytecode(prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := bc.Verify(); err != nil {
		log.Fatal(err)
	}
	bcOut, err := driver.RunBytecode(bc, 0)
	if err != nil {
		log.Fatal(err)
	}

	mod, err := driver.CompileTSA(prog)
	if err != nil {
		log.Fatal(err)
	}
	plainSize := len(wire.EncodeModule(mod))
	plainInstrs := mod.NumInstrs()
	_, _, nullB, arrB := opt.Count(mod)

	st, err := driver.OptimizeModule(mod)
	if err != nil {
		log.Fatal(err)
	}
	tsaOut, err := driver.RunModule(mod, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Linpack (n=60)\n")
	fmt.Printf("  bytecode: %5d instrs %6d bytes\n", bc.NumInstrs(), bc.SerializedSize())
	fmt.Printf("  SafeTSA : %5d instrs %6d bytes\n", plainInstrs, plainSize)
	fmt.Printf("  SafeTSA-O:%5d instrs %6d bytes\n", mod.NumInstrs(), len(wire.EncodeModule(mod)))
	fmt.Printf("  null checks  %3d -> %3d   (paper: 70 -> 43)\n", nullB, st.NullChecksAfter)
	fmt.Printf("  array checks %3d -> %3d   (paper: 67 -> 54)\n", arrB, st.ArrayChecksAfter)
	fmt.Printf("  outputs agree: %v\n", bcOut == tsaOut)
	fmt.Print(tsaOut)
}
