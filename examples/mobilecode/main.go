// Mobilecode demonstrates the security story of sections 2-4: a code
// producer ships an optimized unit to a consumer over an untrusted
// channel, and an attacker who flips bits in transit can never make the
// consumer execute an ill-formed program — every mutation either fails to
// decode, fails the cheap link check, or denotes some other well-formed
// program.
package main

import (
	"fmt"
	"log"

	"safetsa/internal/core"
	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

const src = `
class Account {
    int balance;
    Account(int opening) { balance = opening; }
    void deposit(int amount) {
        if (amount > 0) {
            balance += amount;
        }
    }
    int audit(int[] ledger) {
        int total = balance;
        for (int i = 0; i < ledger.length; i++) {
            total += ledger[i];
        }
        return total;
    }
}
class Main {
    static void main() {
        Account a = new Account(100);
        a.deposit(50);
        a.deposit(-10);
        int[] ledger = new int[4];
        ledger[0] = 5; ledger[3] = 7;
        System.out.println(a.audit(ledger));
    }
}
`

func main() {
	// Producer: compile with optimization — the eliminated null and
	// bounds checks travel in the encoding itself, tamper-proof.
	mod, st, err := driver.CompileTSASourceOpt(map[string]string{"Main.tj": src})
	if err != nil {
		log.Fatal(err)
	}
	data := wire.EncodeModule(mod)
	fmt.Printf("producer: %d bytes; null checks %d -> %d, bounds checks %d -> %d\n",
		len(data), st.NullChecksBefore, st.NullChecksAfter,
		st.ArrayChecksBefore, st.ArrayChecksAfter)

	// Consumer: decode + verify + run.
	dec, err := wire.DecodeModule(data)
	if err != nil {
		log.Fatal(err)
	}
	out, err := driver.RunModule(dec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer: output %q\n", out)

	// Attacker: flip every bit of the unit, one at a time.
	rejectedDecode, rejectedVerify, wellFormed := 0, 0, 0
	for bit := 0; bit < len(data)*8; bit++ {
		mut := append([]byte(nil), data...)
		mut[bit/8] ^= 1 << (7 - bit%8)
		m, err := wire.DecodeModule(mut)
		if err != nil {
			rejectedDecode++
			continue
		}
		if err := m.Verify(core.VerifyOptions{}); err != nil {
			rejectedVerify++
			continue
		}
		wellFormed++
	}
	fmt.Printf("attacker: %d single-bit mutations -> %d rejected by the decoder,\n",
		len(data)*8, rejectedDecode)
	fmt.Printf("          %d rejected by the link check, %d decoded to (different but)\n",
		rejectedVerify, wellFormed)
	fmt.Println("          well-formed programs. Zero ill-formed references reached execution.")
}
