// Quickstart: compile the paper's running example (Figures 1-4) to
// SafeTSA, print the type-separated reference-safe form, ship it through
// the wire format, and execute it on the consumer side.
package main

import (
	"fmt"
	"log"

	"safetsa/internal/driver"
	"safetsa/internal/wire"
)

const src = `
class Main {
    // The fragment of the paper's Figure 1:
    //   if (i > 0) j = j * i + 1; else j = -i * 2;
    //   i = j * 3;
    static int figure1(int i, int j) {
        if (i > 0) {
            j = j * i + 1;
        } else {
            j = -i * 2;
        }
        i = j * 3;
        return i;
    }

    static void main() {
        System.out.println(figure1(5, 7));
        System.out.println(figure1(-4, 9));
    }
}
`

func main() {
	// Producer side: parse, check, build the SafeTSA module.
	mod, err := driver.CompileTSASource(map[string]string{"Main.tj": src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== SafeTSA form (type-separated, (l-r) references) ===")
	fmt.Print(mod.Dump())

	// Externalize: every symbol is drawn from a context-determined
	// finite alphabet, so the bytes below cannot denote an ill-formed
	// program.
	data := wire.EncodeModule(mod)
	fmt.Printf("=== distribution unit: %d bytes, %d instructions ===\n\n",
		len(data), mod.NumInstrs())

	// Consumer side: decode (referential integrity by construction),
	// link-verify, execute.
	dec, err := wire.DecodeModule(data)
	if err != nil {
		log.Fatal(err)
	}
	out, err := driver.RunModule(dec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== consumer output ===")
	fmt.Print(out)
}
