// Optreport shows the producer-side optimizer at work on one corpus
// class: the per-pass breakdown behind the Figure 6 numbers, plus the
// SafeTSA dump of a method before and after.
package main

import (
	"fmt"
	"log"
	"os"

	"safetsa/internal/corpus"
	"safetsa/internal/driver"
	"safetsa/internal/opt"
)

func main() {
	name := "BitSieve"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	u, ok := corpus.ByName(name)
	if !ok {
		log.Fatalf("no corpus unit %q", name)
	}
	mod, err := driver.CompileTSASource(u.Files)
	if err != nil {
		log.Fatal(err)
	}
	before := mod.DumpFunc(mod.Funcs[len(mod.Funcs)-1])

	st := opt.Optimize(mod)
	after := mod.DumpFunc(mod.Funcs[len(mod.Funcs)-1])

	fmt.Printf("%s: producer-side optimization report\n", name)
	fmt.Printf("  instructions : %4d -> %4d\n", st.InstrsBefore, st.InstrsAfter)
	fmt.Printf("  phi          : %4d -> %4d  (liveness DCE prunes the pessimistic ones)\n",
		st.PhisBefore, st.PhisAfter)
	fmt.Printf("  null checks  : %4d -> %4d  (CSE over check instructions)\n",
		st.NullChecksBefore, st.NullChecksAfter)
	fmt.Printf("  array checks : %4d -> %4d\n", st.ArrayChecksBefore, st.ArrayChecksAfter)
	fmt.Printf("  by pass      : %d folded, %d merged by CSE, %d swept by DCE\n\n",
		st.ConstFolded, st.CSERemoved, st.DCERemoved)

	fmt.Println("=== last function, before optimization ===")
	fmt.Print(before)
	fmt.Println("\n=== after ===")
	fmt.Print(after)
}
